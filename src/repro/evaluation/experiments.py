"""The Chapter 9 experiments: transmission time and resource usage.

Five interface implementations are compared, matching Section 9.2.1:

==================  ============================================================
label               implementation
==================  ============================================================
``simple_plb``      hand-coded, naïve PLB interface (first-attempt baseline)
``splice_plb``      Splice-generated simple 32-bit PLB interface
``splice_plb_dma``  Splice-generated PLB interface with DMA support
``splice_fcb``      Splice-generated FCB interface (double/quad bursts)
``optimized_fcb``   hand-coded, hand-tuned FCB interface
==================  ============================================================

:func:`run_cycles_experiment` reproduces Figure 9.2 (bus clock cycles per run
for each scenario); :func:`run_resource_experiment` reproduces Figure 9.3
(estimated FPGA resources per implementation); the two ``*_ratio_summary``
helpers compute the headline percentages quoted in Sections 9.3.1 and 9.3.2.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.core.engine import Splice
from repro.devices.baselines import naive_plb_resource_ir, optimized_fcb_resource_ir
from repro.devices.interpolator import (
    INTERPOLATOR_SPEC_FCB,
    INTERPOLATOR_SPEC_PLB,
    INTERPOLATOR_SPEC_PLB_DMA,
)
from repro.devices.registry import build_runner
from repro.evaluation.scenarios import SCENARIOS, Scenario
from repro.resources.estimator import ResourceReport, estimate_entities, estimate_hardware

#: Implementation labels in the order Figure 9.2/9.3 present them.
IMPLEMENTATIONS = (
    "simple_plb",
    "splice_plb",
    "splice_plb_dma",
    "splice_fcb",
    "optimized_fcb",
)

#: Human-readable names used in reports (matching the paper's legend).
IMPLEMENTATION_NAMES = {
    "simple_plb": "Simple PLB (hand-coded)",
    "splice_plb": "Splice PLB (Simple)",
    "splice_plb_dma": "Splice PLB (DMA)",
    "splice_fcb": "Splice FCB",
    "optimized_fcb": "Optimized FCB (hand-coded)",
}


def _runner_for(label: str) -> Callable[[Sequence[Sequence[int]]], Dict[str, int]]:
    """Build a fresh system for ``label`` and return its scenario runner."""
    return build_runner(label).run_scenario


def run_cycles_experiment(
    implementations: Sequence[str] = IMPLEMENTATIONS,
    scenarios: Sequence[Scenario] = SCENARIOS,
    *,
    repeats: int = 1,
    seed: int = 0,
    workers: int = 1,
) -> Dict[str, Dict[int, int]]:
    """Figure 9.2: bus clock cycles per run for every implementation/scenario.

    This is now a thin preset over :mod:`repro.campaign`: the grid is a
    :class:`~repro.campaign.spec.CampaignSpec` and ``workers > 1`` shards the
    cells across processes.  Each scenario is run ``repeats`` times and the
    cycle counts are averaged; every repeat draws *fresh* input data
    (see :attr:`~repro.campaign.spec.CampaignCell.effective_seed` —
    averaging identical runs would be a no-op), with repeat 0 reproducing
    the classic single-run measurement exactly.
    Returns ``{implementation: {scenario_number: mean cycles}}``.
    """
    from repro.campaign.runner import run_campaign
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec(
        implementations=tuple(implementations),
        scenarios=tuple(scenarios),
        seeds=(seed,),
        repeats=repeats,
        name="figure-9.2",
    )
    result = run_campaign(spec, workers=workers)
    table = result.cycles_table()
    return {label: dict(sorted(table.get(label, {}).items())) for label in implementations}


def run_correctness_check(scenarios: Sequence[Scenario] = SCENARIOS, *, seed: int = 0) -> Dict[int, bool]:
    """Verify every implementation computes the identical result per scenario.

    Each implementation's system is elaborated once and reused across every
    scenario (building is the expensive step; scenario runs leave the system
    re-runnable).
    """
    runners = {label: _runner_for(label) for label in IMPLEMENTATIONS}
    agreement: Dict[int, bool] = {}
    for scenario in scenarios:
        sets = scenario.generate_inputs(seed=seed)
        values = {runner(sets)["result"] & 0xFFFFFFFF for runner in runners.values()}
        agreement[scenario.number] = len(values) == 1
    return agreement


# -- resources ----------------------------------------------------------------------


def _splice_resource_report(spec: str, label: str) -> ResourceReport:
    engine = Splice()
    result = engine.generate(spec)
    return estimate_hardware(result.hardware.ir, label=label)


def run_resource_experiment(implementations: Sequence[str] = IMPLEMENTATIONS) -> Dict[str, ResourceReport]:
    """Figure 9.3: estimated FPGA resources consumed by each implementation."""
    reports: Dict[str, ResourceReport] = {}
    for label in implementations:
        if label == "simple_plb":
            reports[label] = estimate_entities([naive_plb_resource_ir()], label=label)
        elif label == "optimized_fcb":
            reports[label] = estimate_entities([optimized_fcb_resource_ir()], label=label)
        elif label == "splice_plb":
            reports[label] = _splice_resource_report(INTERPOLATOR_SPEC_PLB, label)
        elif label == "splice_plb_dma":
            reports[label] = _splice_resource_report(INTERPOLATOR_SPEC_PLB_DMA, label)
        elif label == "splice_fcb":
            reports[label] = _splice_resource_report(INTERPOLATOR_SPEC_FCB, label)
        else:
            raise KeyError(f"unknown implementation label {label!r}")
    return reports


# -- headline ratios (Sections 9.3.1 / 9.3.2) -----------------------------------------


def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def cycle_ratio_summary(results: Optional[Dict[str, Dict[int, int]]] = None) -> Dict[str, float]:
    """Headline transmission-time ratios of Section 9.3.1.

    Returns a dictionary with:

    * ``splice_plb_vs_naive`` — fraction by which the Splice PLB interface is
      faster than the naïve hand-coded PLB (paper: ~25%),
    * ``splice_fcb_vs_naive`` — fraction by which the Splice FCB interface is
      faster than the naïve PLB (paper: ~43%),
    * ``splice_fcb_vs_optimized`` — fraction by which the Splice FCB is slower
      than the hand-optimized FCB (paper: ~13%), and
    * ``dma_gain_vs_splice_plb`` — fractional improvement DMA brings over the
      simple Splice PLB interface (paper: 1-4%).
    """
    results = results or run_cycles_experiment()
    scenarios = sorted(results["splice_plb"])

    def avg_ratio(numerator: str, denominator: str) -> float:
        return _average([results[numerator][s] / results[denominator][s] for s in scenarios])

    return {
        "splice_plb_vs_naive": 1.0 - avg_ratio("splice_plb", "simple_plb"),
        "splice_fcb_vs_naive": 1.0 - avg_ratio("splice_fcb", "simple_plb"),
        "splice_fcb_vs_optimized": avg_ratio("splice_fcb", "optimized_fcb") - 1.0,
        "dma_gain_vs_splice_plb": 1.0 - avg_ratio("splice_plb_dma", "splice_plb"),
    }


def resource_ratio_summary(reports: Optional[Dict[str, ResourceReport]] = None) -> Dict[str, float]:
    """Headline resource ratios of Section 9.3.2.

    * ``splice_plb_vs_naive`` — fraction of resources saved by the Splice PLB
      interface versus the naïve hand-coded PLB (paper: ~23%),
    * ``splice_fcb_vs_naive`` — saving of the Splice FCB versus the naïve PLB
      (paper: ~28%),
    * ``splice_fcb_vs_optimized`` — extra resources of the Splice FCB over the
      hand-optimized FCB (paper: ~2%), and
    * ``dma_overhead_vs_splice_plb`` — extra resources of the DMA-enabled PLB
      interface over the simple one (paper: 57-69%).
    """
    reports = reports or run_resource_experiment()

    def slices(label: str) -> float:
        return max(1.0, float(reports[label].slices))

    return {
        "splice_plb_vs_naive": 1.0 - slices("splice_plb") / slices("simple_plb"),
        "splice_fcb_vs_naive": 1.0 - slices("splice_fcb") / slices("simple_plb"),
        "splice_fcb_vs_optimized": slices("splice_fcb") / slices("optimized_fcb") - 1.0,
        "dma_overhead_vs_splice_plb": slices("splice_plb_dma") / slices("splice_plb") - 1.0,
    }
