"""The four interpolator usage scenarios (Figure 9.1).

Each scenario transfers three sets of input values to the hardware and reads
a single result back.  The element counts are taken directly from Figure 9.1;
the values themselves are generated deterministically (monotonic timestamps,
pseudo-random control samples, in-range query points) so every interface
implementation operates on identical data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Scenario:
    """One row of Figure 9.1."""

    number: int
    set1: int
    set2: int
    set3: int

    @property
    def total(self) -> int:
        return self.set1 + self.set2 + self.set3

    def generate_inputs(self, seed: int = 0) -> Tuple[List[int], List[int], List[int]]:
        """Deterministic input data with the Figure 9.1 element counts."""
        rng = np.random.default_rng(self.number * 1000 + seed)
        set1 = np.sort(rng.integers(0, 1 << 16, size=self.set1)).astype(np.int64)
        set2 = rng.integers(0, 1 << 12, size=self.set2).astype(np.int64)
        lo = int(set1.min()) if self.set1 else 0
        hi = int(set1.max()) if self.set1 else 1
        set3 = rng.integers(lo, max(hi, lo + 1), size=self.set3).astype(np.int64)
        return [int(v) for v in set1], [int(v) for v in set2], [int(v) for v in set3]


#: Figure 9.1 — input parameters required for each scenario.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(number=1, set1=2, set2=1, set3=2),
    Scenario(number=2, set1=4, set2=2, set3=4),
    Scenario(number=3, set1=8, set2=3, set3=6),
    Scenario(number=4, set1=16, set2=4, set3=8),
)


def scenario(number: int) -> Scenario:
    """Look a scenario up by its Figure 9.1 number (1-4)."""
    for candidate in SCENARIOS:
        if candidate.number == number:
            return candidate
    raise KeyError(f"no scenario numbered {number}; Figure 9.1 defines scenarios 1-4")


def scenario_table() -> List[Dict[str, int]]:
    """Figure 9.1 as a list of table rows."""
    return [
        {
            "scenario": s.number,
            "set1": s.set1,
            "set2": s.set2,
            "set3": s.set3,
            "total": s.total,
        }
        for s in SCENARIOS
    ]
