"""Evaluation harness reproducing the paper's Chapter 9 results.

* :mod:`repro.evaluation.scenarios` — the four interpolation usage scenarios
  and their input sizes (Figure 9.1).
* :mod:`repro.evaluation.experiments` — the transmission-time comparison
  (Figure 9.2 / Section 9.3.1) and the resource-usage comparison
  (Figure 9.3 / Section 9.3.2) across all five interface implementations.
* :mod:`repro.evaluation.report` — plain-text table rendering.
"""

from repro.evaluation.scenarios import SCENARIOS, Scenario, scenario_table
from repro.evaluation.experiments import (
    IMPLEMENTATIONS,
    run_cycles_experiment,
    run_resource_experiment,
    cycle_ratio_summary,
    resource_ratio_summary,
)
from repro.evaluation.report import format_table

__all__ = [
    "SCENARIOS",
    "Scenario",
    "scenario_table",
    "IMPLEMENTATIONS",
    "run_cycles_experiment",
    "run_resource_experiment",
    "cycle_ratio_summary",
    "resource_ratio_summary",
    "format_table",
]
