"""repro — a from-scratch reproduction of Splice (Thiel, 2007).

Splice is a code-generation tool that turns ANSI-C-like interface
declarations plus a handful of ``%`` target directives into (a) bus-adapter
hardware translating a native SoC bus into the bus-independent Splice
Interface Standard (SIS), (b) an arbitration unit, (c) per-function
user-logic stubs, and (d) matching software drivers.

This package provides the tool itself (:mod:`repro.core`), the SIS
(:mod:`repro.sis`), cycle-accurate models of the PLB / OPB / FCB / APB buses
(:mod:`repro.buses`) on a small RTL simulation kernel (:mod:`repro.rtl`), a
CPU/SoC model to execute generated drivers (:mod:`repro.soc`), the paper's
example devices (:mod:`repro.devices`), an FPGA resource estimator
(:mod:`repro.resources`), and the evaluation harness reproducing the paper's
figures (:mod:`repro.evaluation`).
"""

__version__ = "1.0.0"

from repro.core.engine import Splice, GenerationResult
from repro.core.syntax import parse_spec

__all__ = ["Splice", "GenerationResult", "parse_spec", "__version__"]
