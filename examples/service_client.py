#!/usr/bin/env python3
"""Service walkthrough: a farm, its HTTP API, and a streaming client — all
in one process.

``splice campaign run`` pays elaboration and process startup on every
invocation.  The service subsystem keeps those warm: worker processes hold
built runners resident across jobs, a priority queue orders submissions,
and the shared result cache answers repeat submissions without touching a
worker.  This example starts the whole stack in-process (the same code
``splice serve`` runs), drives it through the real HTTP API, and shows:

1. per-cell progress streamed live over NDJSON while a job runs,
2. priority scheduling (a later, higher-priority job overtakes),
3. the cache short-circuit (an identical resubmission completes in
   milliseconds with hit rate 1.0),
4. that the served result is bit-identical to the batch runner's.

Run from the repository root::

    PYTHONPATH=src python examples/service_client.py

Against a separately started farm (``splice serve``), only the client half
applies — point :class:`ServiceClient` at its URL.
"""

from repro.campaign import ScenarioSweep, run_campaign, sweep_grid
from repro.service import ServiceClient, SimulationFarm, serve_farm_in_thread


def main() -> None:
    # 1. A farm with two warm workers and an (ephemeral) shared cache,
    #    plus the HTTP server on an OS-assigned port.
    with SimulationFarm(workers=2, preload=("splice_plb",)) as farm:
        server, _thread = serve_farm_in_thread(farm)
        client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
        print(f"Farm up: {client.healthz()}")

        # 2. Submit two grids: a bulk sweep, then a small high-priority one.
        #    The priority-5 job overtakes the remaining bulk shards.
        bulk = sweep_grid(
            ScenarioSweep(mode="geometric", count=4, base=(8, 4, 8), max_size=128),
            implementations=("splice_plb", "splice_fcb"),
            name="bulk-sweep",
        )
        urgent = sweep_grid(
            ScenarioSweep(mode="degenerate", count=2),
            implementations=("splice_plb",),
            name="urgent",
        )
        bulk_job = client.submit(bulk)
        urgent_job = client.submit(urgent, priority=5)
        print(f"Submitted {bulk_job['id']} ({bulk_job['cells_total']} cells, "
              f"priority 0) and {urgent_job['id']} "
              f"({urgent_job['cells_total']} cells, priority 5)")

        # 3. Follow the bulk job's event stream: one NDJSON line per event,
        #    delivered as it happens.
        for event in client.events(bulk_job["id"]):
            if event["event"] == "cell":
                print(f"  [{event['done']}/{event['total']}] "
                      f"{event['label']} scenario {event['scenario']}: "
                      f"{event['cycles']} cycles (worker {event['worker']})")
            elif event["event"] == "state":
                print(f"  {bulk_job['id']} -> {event['state']}")

        urgent_final = client.wait(urgent_job["id"])
        print(f"Urgent job finished {urgent_final['state']} in "
              f"{urgent_final['elapsed_s']:.3f}s")

        # 4. Resubmit the identical bulk spec: every cell is answered from
        #    the shared cache at submit time — no queueing, no workers.
        warm = client.submit_and_wait(bulk)
        assert warm["cells_cached"] == warm["cells_total"]
        print(f"Warm resubmission: {warm['cells_cached']}/{warm['cells_total']} "
              f"cells from cache in {warm['elapsed_s']:.3f}s")

        # 5. The served result is bit-identical to the batch runner.
        served = client.result(bulk_job["id"])
        batch = run_campaign(bulk)
        assert served["cells"] == batch.payload()
        print(f"Served result is bit-identical to `splice campaign run` "
              f"({len(served['cells'])} cells)")

        stats = client.stats()
        print(f"Farm stats: {stats['cells']['cells_executed']} cells executed, "
              f"{stats['cells']['cells_cached']} cached, "
              f"hit rate {stats['cache_hit_rate']:.2f}")

        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
