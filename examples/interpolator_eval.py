#!/usr/bin/env python3
"""Chapter 9 evaluation: regenerate Figures 9.1, 9.2 and 9.3.

Runs the Scan Eagle linear-interpolator workload through all five interface
implementations (naïve hand-coded PLB, Splice PLB, Splice PLB + DMA, Splice
FCB, hand-optimized FCB) on the simulated SoC and prints the paper's tables
plus the Section 9.3 headline percentages.
"""

from repro.evaluation.experiments import (
    IMPLEMENTATION_NAMES,
    cycle_ratio_summary,
    resource_ratio_summary,
    run_correctness_check,
    run_cycles_experiment,
    run_resource_experiment,
)
from repro.evaluation.report import (
    cycles_report,
    ratio_report,
    resources_report,
    scenario_report,
)
from repro.evaluation.scenarios import scenario_table


def main() -> None:
    print("Figure 9.1 — Input Parameters Required for Each Scenario")
    print(scenario_report(scenario_table()))
    print()

    print("Running the transmission-time experiment (cycle-accurate simulation)...")
    cycles = run_cycles_experiment()
    print()
    print("Figure 9.2 — Clock Cycles Per Run By Each Implementation")
    print(cycles_report(cycles, IMPLEMENTATION_NAMES))
    print()
    print(ratio_report(cycle_ratio_summary(cycles),
                       "Section 9.3.1 — headline transmission-time ratios "
                       "(paper: ~25%, ~43%, ~13%, 1-4%)"))
    print()

    resources = run_resource_experiment()
    print("Figure 9.3 — FPGA Resources Consumed By Each Implementation")
    print(resources_report(resources, IMPLEMENTATION_NAMES))
    print()
    print(ratio_report(resource_ratio_summary(resources),
                       "Section 9.3.2 — headline resource ratios "
                       "(paper: ~23%, ~28%, ~2%, 57-69%)"))
    print()

    agreement = run_correctness_check()
    print("Cross-implementation result agreement per scenario:", agreement)


if __name__ == "__main__":
    main()
