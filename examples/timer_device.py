#!/usr/bin/env python3
"""Chapter 8 walk-through: the hardware timer, from specification to test suite.

Builds the Figure 8.2 timer specification into a simulated PLB SoC, fills the
generated stubs with the Figure 8.5/8.6 timer logic, and then runs the same
sequence as the Figure 8.8 software test suite, printing what the C program
would print (plus the bus-cycle cost of every driver call).
"""

from repro.devices.timer import TIMER_SPEC, build_timer_system


def main() -> None:
    print("Splice specification (Figure 8.2):")
    print(TIMER_SPEC)

    timer = build_timer_system()
    drivers = timer.drivers
    print("Generated hardware files:", ", ".join(timer.system.generation.hardware_file_listing()))
    print()

    # The Figure 8.8 test suite, scaled down so the simulation stays short:
    drivers["disable"]()                            # Disable the Timer to Start
    clock_rate = drivers["get_clock"]()             # Retrieve Clock Speed of the Underlying Bus
    threshold = 5_000                               # a 50 us threshold at 100 MHz
    drivers["set_threshold"](threshold)             # Setup the Timer (also resets it)
    drivers["enable"]()                             # Enable the Timer

    current_value = drivers["get_snapshot"]()       # Take a Snapshot (should be close to 0)
    print(f"Clock:  {clock_rate} Hz")
    print(f"Value:  {current_value}")

    timer.system.run(threshold + 100)               # "sleep" past the threshold; timer fires

    status = drivers["get_status"]()                # Grab the Status Value (clears fired bit)
    print(f"Status: 0x{status:x}   (bit 0 = enabled, bit 1 = fired)")

    drivers["disable"]()                            # Disable the Timer
    got_threshold = drivers["get_threshold"]()      # Should match the value set above
    print(f"Thold:  {got_threshold}")

    status = drivers["get_status"]()
    print(f"Status: 0x{status:x}")
    print()

    print("Driver call costs (bus clock cycles):")
    for name in ("disable", "enable", "set_threshold", "get_threshold",
                 "get_snapshot", "get_clock", "get_status"):
        calls = drivers[name].calls
        if calls:
            avg = sum(c.cycles for c in calls) / len(calls)
            print(f"  {name:<14} {avg:6.1f} cycles/call over {len(calls)} call(s)")
    print(f"Timer fired {timer.core.fire_count} time(s); "
          f"total simulated cycles: {timer.cycles}")


if __name__ == "__main__":
    main()
