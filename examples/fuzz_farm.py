#!/usr/bin/env python3
"""Fuzzing as a service workload: a sharded fuzz job over the farm's HTTP API.

A batch ``splice fuzz run`` executes one session in one process.  The farm
turns the same differential fuzzer into a service workload: a seed range
shards across the warm workers (one deterministic session per seed),
findings are shrunk worker-side and streamed back as NDJSON ``finding``
events while the job runs, and the aggregate — per-seed sessions, coverage
cells, deduplicated findings — is the job result.  This example starts a
durable farm in-process (the same code ``splice serve --state-dir`` runs),
submits a fuzz job over HTTP, and shows:

1. live session / finding events streamed while workers fuzz in parallel,
2. the aggregated result: coverage cells (bus x scenario family x fault
   class) and counterexamples,
3. determinism: resubmitting the same seed range reproduces the identical
   coverage and findings, regardless of scheduling,
4. the durable leftovers: journal, corpus dir, and coverage trajectory.

Run from the repository root::

    PYTHONPATH=src python examples/fuzz_farm.py

Against a separately started farm (``splice serve``), the CLI equivalent is
``splice fuzz submit --url ... --seed-start 7 --sessions 4 --budget 12``.
"""

import json
import tempfile
from pathlib import Path

from repro.service import ServiceClient, SimulationFarm, serve_farm_in_thread


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="splice-fuzz-farm-"))

    # 1. A durable farm: journal, result cache, and fuzz corpus all live
    #    under state_dir; finished fuzz jobs append their coverage
    #    trajectory to history.jsonl.
    with SimulationFarm(
        workers=2,
        state_dir=state_dir,
        history_path=state_dir / "history.jsonl",
    ) as farm:
        server, _thread = serve_farm_in_thread(farm)
        client = ServiceClient(
            "http://127.0.0.1:%d" % server.server_address[1], timeout=600
        )
        print(f"Durable farm up, state in {state_dir}")

        # 2. Submit a pinned seed range: seeds 7..10, 12 oracle cases each.
        #    Every seed becomes its own shard, so both workers fuzz at once.
        job = client.submit_fuzz(seed_start=7, sessions=4, budget=12,
                                 name="example-fuzz")
        print(f"Submitted {job['id']}: 4 sessions x 12 cases")

        # 3. Follow the stream: one line per completed session or shrunk
        #    finding, as the workers report them.
        for event in client.events(job["id"]):
            if event["event"] == "session":
                print(f"  [{event['done']}/{event['total']}] seed {event['seed']}: "
                      f"{event['executed']} cases, {event['findings']} findings, "
                      f"{event['coverage']} coverage cells "
                      f"(worker {event['worker']})")
            elif event["event"] == "finding":
                print(f"  !! {event['kind']} on {event['kernel']}: {event['token']}")
            elif event["event"] == "state":
                print(f"  {job['id']} -> {event['state']}")

        result = client.result(job["id"])
        print(f"Aggregate: {result['executed']} cases, "
              f"{len(result['coverage'])} coverage cells, "
              f"{len(result['counterexamples'])} counterexamples")

        # 4. Same seed range again: fuzz sessions always re-execute (unlike
        #    campaign cells there is no result cache for them) but each
        #    seed's session is deterministic, so the coverage and findings
        #    must reproduce exactly regardless of scheduling.
        again = client.submit_fuzz(seed_start=7, sessions=4, budget=12,
                                   name="example-fuzz")
        client.wait(again["id"])
        repeat = client.result(again["id"])
        assert repeat["coverage"] == result["coverage"]
        assert repeat["counterexamples"] == result["counterexamples"]
        print("Resubmission reproduced identical coverage and findings")

        server.shutdown()
        server.server_close()

    # 5. What durability left behind.
    journal_lines = (state_dir / "journal.jsonl").read_text().splitlines()
    trajectory = [json.loads(line)
                  for line in (state_dir / "history.jsonl").read_text().splitlines()]
    corpus = sorted(p.name for p in (state_dir / "corpus").glob("*.json"))
    print(f"Journal: {len(journal_lines)} records "
          f"(kill -9 + restart on --state-dir {state_dir} would resume)")
    print(f"Trajectory: {[rec['headline']['coverage_cells'] for rec in trajectory]} "
          f"coverage cells per finished job")
    print(f"Corpus: {len(corpus)} saved finding(s)")


if __name__ == "__main__":
    main()
