#!/usr/bin/env python3
"""Quickstart: describe a peripheral, generate its hardware and drivers, run it.

This walks the Figure 1.1 flow end to end for a tiny accelerator:

1. write a Splice specification (interface declarations + target directives),
2. run the engine to get the generated VHDL files and C driver sources,
3. elaborate the design onto a simulated PLB-based SoC, and
4. call the generated runtime drivers and watch real bus-cycle costs.
"""

from repro import Splice
from repro.soc.system import build_system

SPEC = """\
// A small fixed-point multiply-accumulate accelerator on the PLB.
%device_name mac_unit
%bus_type plb
%bus_width 32
%base_address 0x80001000

int  mac(int a, int b, int acc);          // one multiply-accumulate step
int  dot(char n, int*:n xs, int*:n ys);   // variable-length dot product
void reset_stats();                       // blocking, no return value
"""


def main() -> None:
    # --- 2. generation ---------------------------------------------------------
    engine = Splice()
    result = engine.generate(SPEC)
    print("Generated hardware files (Figure 8.3 style):")
    for name in result.hardware_file_listing():
        print(f"  {name}")
    print("Generated software files (Figure 8.7 style):")
    for name in result.software_file_listing():
        print(f"  {name}")
    print()
    print("--- excerpt of the generated PLB adapter " + "-" * 30)
    print("\n".join(result.hardware_files["plb_interface.vhd"].splitlines()[:8]))
    print()

    # --- 3. elaborate onto a simulated SoC --------------------------------------
    stats = {"calls": 0}

    def reset_stats():
        stats["calls"] = 0

    behaviors = {
        "mac": lambda a, b, acc: (a * b + acc) & 0xFFFFFFFF,
        "dot": lambda n, xs, ys: sum(x * y for x, y in zip(xs, ys)) & 0xFFFFFFFF,
        "reset_stats": reset_stats,
    }
    system = build_system(SPEC, behaviors=behaviors)

    # --- 4. call the generated drivers -----------------------------------------
    drivers = system.drivers
    print("mac(3, 4, 10)          ->", drivers["mac"](3, 4, 10))
    print("dot([1..4], [5..8])    ->", drivers["dot"](4, [1, 2, 3, 4], [5, 6, 7, 8]))
    drivers["reset_stats"]()

    for name in ("mac", "dot", "reset_stats"):
        call = drivers[name].last_call
        print(f"{name:>12}: {call.cycles:4d} bus cycles, {call.transactions} bus transactions")
    print(f"total simulated bus cycles: {system.cycles}")
    print(f"SIS protocol violations:    {len(system.monitor.violations)}")


if __name__ == "__main__":
    main()
