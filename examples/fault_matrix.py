#!/usr/bin/env python3
"""Fault-injection walkthrough: one seeded fault, three kernels, one matrix.

Fault schedules (:mod:`repro.faults`) are deterministic, replayable tokens —
``kind:target:cycle[:duration[:bit]]`` — bound to a live system via
``runner.apply_faults``.  The same schedule produces the same faulted
execution on all three kernels, so injection composes with the repo's
differential-testing story instead of weakening it.

This script walks the three layers the fault subsystem spans:

1. parse a token and inspect the canonical schedule,
2. inject it under all three kernels and check they agree cycle-exactly,
3. run the monitor-efficacy matrix (``splice faults run`` in library form),
4. put faults on a campaign grid axis next to the clean baseline.

Run from the repository root::

    PYTHONPATH=src python examples/fault_matrix.py

or the CLI equivalent of step 3::

    PYTHONPATH=src python -m repro.cli faults run \
        --buses splice_plb splice_fcb --classes stuck_at_1 transient_pulse
"""

from repro.campaign import CampaignSpec, ScenarioSweep, run_campaign
from repro.devices.registry import build_runner
from repro.evaluation.scenarios import SCENARIOS
from repro.faults import FaultSchedule, matrix_to_markdown, run_fault_matrix

KERNELS = ("reference", "event", "compiled")
TOKEN = "stuck_at_1:IO_ENABLE:40:3"


def main() -> None:
    # 1. A schedule is parsed from a compact token; the canonical form it
    #    re-emits is what campaign artifacts and matrix rows record, so any
    #    observed behaviour can be replayed bit-exactly from the artifact.
    schedule = FaultSchedule.parse(TOKEN)
    print(f"Schedule {TOKEN!r} -> canonical {schedule.token!r} "
          f"(fingerprint {schedule.fingerprint[:12]})")

    # 2. Same fault, three kernels: outcomes, injection counts, and monitor
    #    violations must be identical.  Faults fire post-settle, before
    #    monitors sample, and cycles are relative to the moment the schedule
    #    is (re)based — which is what makes this comparison well-defined.
    scenario = SCENARIOS[0]
    outcomes = {}
    for kernel in KERNELS:
        runner = build_runner("splice_plb", kernel=kernel)
        runner.apply_faults(schedule)
        outcome = runner.run_scenario(scenario.generate_inputs(seed=0))
        monitor = runner.system.monitor
        outcomes[kernel] = (
            outcome["result"],
            outcome["cycles"],
            runner.fault_controller.injected,
            tuple((v.rule, v.cycle) for v in monitor.violations),
        )
    reference = outcomes["reference"]
    assert all(value == reference for value in outcomes.values()), outcomes
    result, cycles, injected, violations = reference
    print(f"All kernels agree under injection: result={result} cycles={cycles} "
          f"injected={injected} violations={len(violations)}")

    # 3. The monitor-efficacy matrix: every (bus x fault class) cell runs a
    #    fresh system with one probe-placed fault and reports whether the SIS
    #    protocol monitor caught it.  Escapes are coverage findings, not
    #    failures — the APB variant's expected data-fault escapes included.
    rows = run_fault_matrix(
        buses=("splice_plb", "splice_fcb"),
        kinds=("stuck_at_0", "stuck_at_1", "transient_pulse", "dup_beat"),
    )
    print()
    print(matrix_to_markdown(rows))
    detected = sum(1 for row in rows if row.status == "detected")
    print(f"\n{detected}/{len(rows)} cells detected by the protocol monitor")

    # 4. Faults as a grid axis: the campaign crosses every clean cell with
    #    every schedule, and the fault token is folded into each cell's
    #    digest — faulted outcomes never collide with clean ones in the
    #    result cache, and faulted rows carry their token in the artifacts.
    spec = CampaignSpec(
        implementations=("splice_plb",),
        scenarios=ScenarioSweep(mode="linear", count=2).scenarios(),
        faults=(None, schedule.token),
        name="fault-axis-demo",
    )
    result = run_campaign(spec)
    faulted = [row for row in result.payload() if row.get("faults")]
    print(f"\nCampaign grid: {spec.cell_count} cells, "
          f"{len(faulted)} faulted ({faulted[0]['faults']})")


if __name__ == "__main__":
    main()
