#!/usr/bin/env python3
"""Campaign walkthrough: a custom scenario sweep, run in parallel, cached,
and rendered to a markdown report.

The paper's evaluation is a fixed 5x4 grid.  The campaign subsystem makes
the grid declarative: describe implementations x scenarios x seeds x repeats
as a :class:`~repro.campaign.spec.CampaignSpec`, pick an executor (serial or
process-sharded), point it at a result cache, and write report artifacts.

Run from the repository root::

    PYTHONPATH=src python examples/campaign_sweep.py

or the CLI equivalent::

    PYTHONPATH=src python -m repro.cli campaign run \
        --sweep geometric --sweep-count 5 --workers 4 \
        --cache-dir .campaign-cache --artifacts campaign-out
"""

import os
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ScenarioSweep,
    run_campaign,
)
from repro.evaluation.experiments import IMPLEMENTATION_NAMES


def main() -> None:
    # 1. Declare the grid: a geometric set-size sweep (4 -> 64 elements)
    #    across three Splice-generated interfaces, two seeds each.
    sweep = ScenarioSweep(mode="geometric", count=5, base=(4, 2, 4), max_size=128)
    spec = CampaignSpec(
        implementations=("splice_plb", "splice_fcb", "splice_plb_dma"),
        scenarios=sweep.scenarios(),
        seeds=(0, 1),
        name="geometric-sweep",
    )
    print(f"Grid: {spec.cell_count} cells "
          f"({len(spec.implementations)} implementations x "
          f"{len(spec.scenarios)} scenarios x {len(spec.seeds)} seeds)")

    # 2. Run it sharded across worker processes, with a content-addressed
    #    cache: a second invocation of this script skips every cell.
    cache_dir = Path(".campaign-cache")
    result = run_campaign(spec, workers=os.cpu_count() or 1, cache=cache_dir)
    meta = result.meta
    print(f"Executed {meta['cells_executed']} cells "
          f"({meta['cells_cached']} from cache) via {meta['executor']} "
          f"executor in {meta['elapsed_s']:.3f}s")

    # 3. Write the artifacts: campaign.json / campaign.csv / campaign.md.
    paths = result.write_artifacts(Path("campaign-out"), names=IMPLEMENTATION_NAMES)
    print(f"Markdown report: {paths['markdown']}")
    print()
    print(result.to_markdown(names=IMPLEMENTATION_NAMES))


if __name__ == "__main__":
    main()
