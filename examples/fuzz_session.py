#!/usr/bin/env python3
"""Fuzzing walkthrough: the three kernels as their own differential oracle.

A fuzz case (:mod:`repro.fuzz`) is pure data — a generated topology (bus ×
function mix), a workload of driver calls and idle spans, an optional fault
token, and the compiled kernel's leap toggle.  The oracle builds the case on
all three kernels and demands exact agreement on traces, outcomes, monitor
violations, and leap accounting; any disagreement is a typed, replayable
counterexample.

This script walks the lifecycle:

1. build one case by hand and run it through the oracle,
2. run a tiny deterministic fuzz session (needs Hypothesis),
3. convict a deliberately broken kernel and shrink the finding,
4. replay a shipped regression-corpus case.

Run from the repository root::

    PYTHONPATH=src python examples/fuzz_session.py

or the CLI equivalents::

    PYTHONPATH=src python -m repro.cli fuzz run --budget 50 --seed 7 --no-save
    PYTHONPATH=src python -m repro.cli fuzz replay <token>
"""

from pathlib import Path

from repro.fuzz import (
    Counterexample,
    FuzzCall,
    FuzzCase,
    FuzzFunction,
    FuzzTopology,
    corpus_files,
    minimize,
    replay_case,
    run_case,
)
from repro.rtl import ReferenceSimulator, Simulator

CORPUS = Path(__file__).resolve().parent.parent / "tests" / "corpus"


class LyingStatsSimulator(Simulator):
    """A scan kernel that claims it leaped — leap accounting cannot balance."""

    def step(self, cycles=1):
        super().step(cycles)
        self.stats.leaped_cycles += 1


def main() -> None:
    # 1. A case is plain data; the topology renders to a real Splice spec,
    #    so the oracle exercises the full generator path per kernel.
    topology = FuzzTopology(
        bus="plb",
        functions=(
            FuzzFunction("set_reg", "poke"),
            FuzzFunction("digest", "stream", calc_latency=24),
        ),
    )
    case = FuzzCase(
        topology=topology,
        calls=(
            FuzzCall("set_reg", (3, 0x80000000)),
            FuzzCall.idle(40),  # idle spans put cycle leaping in play
            FuzzCall("digest", ((1, 0, 0xFFFFFFFF),)),
        ),
    )
    print(f"case {case.token}:")
    print("  " + "\n  ".join(topology.spec_source().strip().splitlines()))
    verdict = run_case(case)
    print(f"oracle verdict on clean kernels: {verdict.kind} ({verdict.detail})\n")

    # 2. A session draws cases from Hypothesis strategies — same seed, same
    #    budget => identical case-token stream and verdicts, every time.
    try:
        from repro.fuzz import run_session
    except ImportError as exc:
        print(f"skipping session demo: {exc}")
    else:
        report = run_session(10, seed=7, corpus_dir=None)
        print(report.render())
        print()

    # 3. The property has teeth: swap one kernel for a broken one and the
    #    oracle convicts it, then the domain minimizer shrinks the case
    #    while the same verdict kind still reproduces.
    def rigged(c):
        return {"reference": ReferenceSimulator, "lying": LyingStatsSimulator}

    bad = run_case(case, kernel_factories=rigged(case))
    print(f"broken kernel verdict: {bad.kind} on kernel={bad.kernel} ({bad.detail})")
    shrunk, attempts = minimize(
        case, lambda c: run_case(c, kernel_factories=rigged(c)).kind == bad.kind
    )
    print(
        f"shrunk {len(case.calls)} calls / {len(case.topology.functions)} functions "
        f"-> {len(shrunk.calls)} / {len(shrunk.topology.functions)} "
        f"in {attempts} attempts (token {shrunk.token})\n"
    )

    # 4. Shipped counterexamples are shrunk fuzzer finds against broken
    #    kernels; each must replay `pass` on the current clean kernels
    #    (tests/test_fuzz_regressions.py does this on every tier-1 run).
    path = corpus_files(CORPUS)[0]
    record = Counterexample.load(path)
    replayed = replay_case(record)
    print(
        f"corpus {path.name}: found as {record.verdict.kind} "
        f"({record.discovered.get('mutation', 'unknown mutation')}), "
        f"replays {replayed.kind} on clean kernels"
    )


if __name__ == "__main__":
    main()
