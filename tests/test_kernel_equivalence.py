"""Differential harness: every kernel is cycle-exact vs the oracle.

Every test here builds the *same* design once per kernel — the snapshot-based
:class:`~repro.rtl.simulator.ReferenceSimulator` (the seed kernel, kept
verbatim), the event-driven :class:`~repro.rtl.simulator.Simulator`, and the
levelized :class:`~repro.rtl.compile.CompiledSimulator` — drives all of them
with identical stimulus, records **every registered signal on every cycle**,
and asserts the recordings are identical, cycle for cycle and bit for bit.
Coverage:

* randomized register files on all four buses (seeded random read/write
  interleavings through the generated drivers),
* the Figure 9.1 interpolator scenarios on all four buses, and
* the Chapter 8 timer running the Figure 8.8 software test suite.

Any missing sensitivity declaration, bad fast-path skip, dirty-set bug,
wrong levelization order, or unsound wait-state elision shows up as a
first-divergence cycle with the exact signals that differ.
"""

import random

import pytest

from repro.devices.interpolator import build_splice_interpolator, interpolate_fixed_point
from repro.devices.timer import build_timer_system
from repro.evaluation.scenarios import SCENARIOS
from repro.rtl import CompiledSimulator, ReferenceSimulator, Simulator, TraceRecorder
from repro.soc.system import build_system

KERNELS = (
    ("reference", ReferenceSimulator),
    ("event", Simulator),
    ("compiled", CompiledSimulator),
)

BASES = {
    "plb": "%device_name dev\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n",
    "opb": "%device_name dev\n%bus_type opb\n%bus_width 32\n%base_address 0x80000000\n",
    "fcb": "%device_name dev\n%bus_type fcb\n%bus_width 32\n",
    "apb": "%device_name dev\n%bus_type apb\n%bus_width 32\n%base_address 0x40000000\n",
}

ALL_BUSES = sorted(BASES)


def _assert_traces_equal(ref_trace, other_trace, label):
    """Fail with the first divergent cycle and the differing signals."""
    for cycle, (ref_sample, other_sample) in enumerate(
        zip(ref_trace.samples, other_trace.samples)
    ):
        if ref_sample != other_sample:
            names = set(ref_sample) | set(other_sample)
            diff = {
                name: (ref_sample.get(name), other_sample.get(name))
                for name in sorted(names)
                if ref_sample.get(name) != other_sample.get(name)
            }
            pytest.fail(
                f"{label} kernel trace diverges from reference at cycle {cycle}: "
                + ", ".join(f"{n}: ref={a} {label}={b}" for n, (a, b) in diff.items())
            )
    assert len(ref_trace) == len(other_trace), (
        f"kernels ran different cycle counts: reference={len(ref_trace)} "
        f"{label}={len(other_trace)}"
    )


def _monitor_violations(built):
    """The (cycle, rule, detail) list of the built object's SIS monitor."""
    monitor = getattr(built, "monitor", None)
    if monitor is None:
        system = getattr(built, "system", None)
        monitor = getattr(system, "monitor", None) if system is not None else None
    if monitor is None:
        return None
    return [(v.cycle, v.rule, v.detail) for v in monitor.violations]


def _run_differential(build, stimulus):
    """Build + drive one design per kernel; return both (outcome, stats).

    ``build(simulator_factory)`` must return an object exposing ``simulator``;
    ``stimulus(built)`` drives it and returns a comparable outcome.  Every
    registered signal is recorded every cycle and every kernel's recording is
    compared exactly against the reference kernel's; when the built object
    carries an SIS protocol monitor, the violation lists (fused inline on the
    compiled kernel, per-cycle ``sample`` on the scan kernels) must also be
    element-for-element identical.
    """
    traces = {}
    outcomes = {}
    stats = {}
    violations = {}
    for label, factory in KERNELS:
        built = build(factory)
        simulator = built.simulator
        recorder = TraceRecorder(simulator, simulator.signals)
        outcomes[label] = stimulus(built)
        traces[label] = recorder.trace
        stats[label] = simulator.stats
        violations[label] = _monitor_violations(built)
    for label, _ in KERNELS[1:]:
        _assert_traces_equal(traces["reference"], traces[label], label)
        assert outcomes["reference"] == outcomes[label], label
        assert violations["reference"] == violations[label], (
            f"{label} kernel monitor violations diverge: "
            f"{violations['reference']} != {violations[label]}"
        )
    return outcomes["event"], stats


class TestRandomizedRegisterFiles:
    """Seeded random register-file traffic, all four buses, both kernels."""

    @pytest.mark.parametrize("bus", ALL_BUSES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_register_file_traffic_is_cycle_exact(self, bus, seed):
        source = BASES[bus] + "void write_reg(char idx, int value);\nint read_reg(char idx);\n"

        def build(factory):
            storage = {}
            return build_system(
                source,
                behaviors={
                    "write_reg": lambda idx, value: storage.__setitem__(idx, value),
                    "read_reg": lambda idx: storage.get(idx, 0),
                },
                simulator_factory=factory,
            )

        def stimulus(system):
            rng = random.Random(seed * 101 + ALL_BUSES.index(bus))
            shadow = {}
            observed = []
            for _ in range(25):
                idx = rng.randrange(8)
                if rng.random() < 0.5:
                    value = rng.getrandbits(32)
                    system.drivers["write_reg"](idx, value)
                    shadow[idx] = value
                else:
                    got = system.drivers["read_reg"](idx)
                    assert got == shadow.get(idx, 0)
                    observed.append(got)
            return (tuple(observed), system.cycles)

        outcome, stats = _run_differential(build, stimulus)
        # The event-driven kernel must have actually used its fast path while
        # producing the identical trace.
        assert stats["event"].fast_path_cycles > 0
        assert stats["reference"].fast_path_cycles == 0
        assert stats["event"].comb_activations < stats["reference"].comb_activations
        # The compiled kernel must additionally have elided idle clocked
        # processes (wait-state elision) while staying bit-identical.
        assert stats["compiled"].fast_path_cycles > 0
        assert stats["compiled"].comb_activations < stats["reference"].comb_activations
        assert stats["compiled"].clocked_activations < stats["reference"].clocked_activations


class TestFigure91Scenarios:
    """All Figure 9.1 scenarios on all four buses are cycle-exact."""

    @pytest.mark.parametrize("bus", ALL_BUSES)
    @pytest.mark.parametrize("number", [1, 2, 3, 4])
    def test_scenario_is_cycle_exact(self, bus, number):
        scenario = next(s for s in SCENARIOS if s.number == number)
        sets = scenario.generate_inputs()

        def build(factory):
            device = build_splice_interpolator(f"splice_{bus}", simulator_factory=factory)
            device.simulator = device.system.simulator
            return device

        def stimulus(device):
            outcome = device.run_scenario(sets)
            return (outcome["result"], outcome["cycles"], outcome["transactions"])

        (result, cycles, _), _ = _run_differential(build, stimulus)
        assert result == interpolate_fixed_point(*sets) & 0xFFFFFFFF
        assert cycles > 0


class TestTimerSuite:
    """The Chapter 8 timer running the Figure 8.8 sequence is cycle-exact."""

    def test_figure_8_8_suite_is_cycle_exact(self):
        def build(factory):
            timer = build_timer_system(simulator_factory=factory)
            timer.simulator = timer.system.simulator
            return timer

        def stimulus(timer):
            drivers = timer.drivers
            drivers["disable"]()
            drivers["get_clock"]()
            drivers["set_threshold"](400)
            drivers["enable"]()
            snapshot = drivers["get_snapshot"]()
            timer.system.run(450)  # let the timer fire
            status = drivers["get_status"]()
            drivers["disable"]()
            threshold = drivers["get_threshold"]()
            return (snapshot, status, threshold, timer.cycles)

        (snapshot, status, threshold, _), stats = _run_differential(build, stimulus)
        assert status & 0b10  # fired
        assert threshold == 400
        assert stats["event"].fast_path_cycles > 0
        assert stats["compiled"].fast_path_cycles > 0
        assert stats["compiled"].clocked_activations < stats["reference"].clocked_activations


class TestDirectKernelSemantics:
    """Low-level differential checks on hand-built process networks."""

    @pytest.mark.parametrize("declare_sensitivity", [True, False])
    def test_comb_chain_matches_reference(self, declare_sensitivity):
        def run(factory):
            sim = factory()
            a = sim.signal("a", width=8)
            b = sim.signal("b", width=8)
            c = sim.signal("c", width=8)
            sim.add_comb(
                lambda: b.drive(a.value + 1),
                sensitive_to=[a] if declare_sensitivity else None,
                drives=[b] if declare_sensitivity else None,
            )
            sim.add_comb(
                lambda: c.drive(b.value + 1),
                sensitive_to=[b] if declare_sensitivity else None,
                drives=[c] if declare_sensitivity else None,
            )
            counter = sim.signal("count", width=8)
            sim.add_clocked(lambda: setattr(counter, "next", counter.value + 1))
            sim.add_clocked(lambda: setattr(a, "next", counter.value * 3))
            recorder = TraceRecorder(sim, [a, b, c, counter])
            sim.step(12)
            return recorder.trace.samples

        assert run(ReferenceSimulator) == run(Simulator)
        if declare_sensitivity:
            # Fully declared networks also levelize; undeclared ones are the
            # event kernel's run-always fallback, which the compiled kernel
            # rejects (covered in tests/test_compiled_kernel.py).
            assert run(ReferenceSimulator) == run(CompiledSimulator)

    def test_sparse_activity_matches_reference(self):
        """A design that only changes every Nth cycle exercises the fast path."""

        def run(factory):
            sim = factory()
            pulse = sim.signal("pulse", width=1)
            decoded = sim.signal("decoded", width=8)

            def clocked():
                # Most cycles schedule no signal change at all.
                if sim.cycle % 7 == 0:
                    pulse.next = 1 - pulse.value

            sim.add_clocked(clocked)
            sim.add_comb(
                lambda: decoded.drive(0xAB if pulse.value else 0x11),
                sensitive_to=[pulse],
                drives=[decoded],
            )
            recorder = TraceRecorder(sim, [pulse, decoded])
            sim.step(40)
            return recorder.trace.samples, sim.stats.as_dict()

        ref_samples, _ = run(ReferenceSimulator)
        event_samples, event_stats = run(Simulator)
        compiled_samples, compiled_stats = run(CompiledSimulator)
        assert ref_samples == event_samples == compiled_samples
        assert event_stats["fast_path_cycles"] > 0
        # The decode ran only when PULSE changed, not every cycle — on both
        # scheduling kernels.
        assert event_stats["comb_activations"] < 40
        assert compiled_stats["fast_path_cycles"] > 0
        assert compiled_stats["comb_activations"] < 40
