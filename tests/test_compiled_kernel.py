"""Unit tests for the levelized compiled kernel (``rtl/compile.py``).

The cycle-exactness proof lives in ``tests/test_kernel_equivalence.py``;
this file covers the compiler itself: static combinational-loop rejection
(with the offending signal path, *before* any cycle runs), the declaration
contract, levelization introspection, recompile-on-registration, stats
parity with the event kernel, wait-state elision, and the kernel selection
plumbing the rest of the stack uses.
"""

import pytest

from repro.rtl import (
    KERNELS,
    CompiledSimulator,
    SimulationError,
    Simulator,
    kernel_factory,
)


def _chain(sim):
    """a --p0--> b --p1--> c, clocked counter driving a."""
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    c = sim.signal("c", width=8)
    sim.add_comb(lambda: b.drive(a.value + 1), sensitive_to=[a], drives=[b])
    sim.add_comb(lambda: c.drive(b.value + 1), sensitive_to=[b], drives=[c])
    sim.add_clocked(lambda: setattr(a, "next", a.value + 1))
    return a, b, c


class TestStaticLoopRejection:
    def test_cycle_rejected_at_compile_time_with_signal_path(self):
        sim = CompiledSimulator()
        a = sim.signal("loop_a", width=8)
        b = sim.signal("loop_b", width=8)
        sim.add_comb(lambda: a.drive(b.value + 1), sensitive_to=[b], drives=[a])
        sim.add_comb(lambda: b.drive(a.value + 1), sensitive_to=[a], drives=[b])
        with pytest.raises(SimulationError, match=r"loop_[ab] -> loop_[ba] -> loop_[ab]"):
            sim.compile()
        # The rejection happened before any cycle ran.
        assert sim.cycle == 0
        assert sim.stats.cycles == 0

    def test_cycle_rejected_on_first_step_before_any_cycle(self):
        sim = CompiledSimulator()
        a = sim.signal("self_loop", width=8)
        sim.add_comb(lambda: a.drive(a.value + 1), sensitive_to=[a], drives=[a])
        ran = []
        sim.add_clocked(lambda: ran.append(1))
        with pytest.raises(SimulationError, match="compile time"):
            sim.step()
        assert ran == []  # the clocked phase never started
        assert sim.stats.cycles == 0

    def test_cycle_behind_acyclic_frontend_is_still_found(self):
        # x -> (y <-> z): the acyclic front process must not mask the loop.
        sim = CompiledSimulator()
        x = sim.signal("x", width=8)
        y = sim.signal("y", width=8)
        z = sim.signal("z", width=8)
        w = sim.signal("w", width=8)
        sim.add_comb(lambda: y.drive(x.value), sensitive_to=[x], drives=[y])
        sim.add_comb(lambda: z.drive(y.value + w.value), sensitive_to=[y, w], drives=[z])
        sim.add_comb(lambda: w.drive(z.value), sensitive_to=[z], drives=[w])
        with pytest.raises(SimulationError, match="combinational cycle"):
            sim.compile()

    def test_undeclared_drive_breaking_levelization_raises_at_runtime(self):
        """A process that drives a signal outside its declared drives= set,
        feeding a process ranked before it, must fail loudly instead of
        silently settling on stale values."""
        sim = CompiledSimulator()
        a = sim.signal("a", width=8)
        b = sim.signal("b", width=8)
        c = sim.signal("c", width=8)
        d = sim.signal("d", width=8)
        sim.add_comb(lambda: c.drive(b.value + 1), sensitive_to=[b], drives=[c])
        # Lies about its outputs: declares d but actually drives b.
        sim.add_comb(lambda: b.drive(a.value + 1), sensitive_to=[a], drives=[d])
        sim.add_clocked(lambda: setattr(a, "next", a.value + 1))
        with pytest.raises(SimulationError, match="drives= set"):
            sim.step(2)

    def test_missing_declarations_rejected_with_guidance(self):
        sim = CompiledSimulator()
        a = sim.signal("a", width=8)
        sim.add_comb(lambda: None, sensitive_to=[a])  # no drives
        with pytest.raises(SimulationError, match="drives"):
            sim.compile()

        sim = CompiledSimulator()
        sim.signal("b", width=8)
        sim.add_comb(lambda: None)  # run-always: neither declared
        with pytest.raises(SimulationError, match="sensitive_to and drives"):
            sim.step()


class TestLevelization:
    def test_design_exposes_dense_ids_ranks_and_source(self):
        sim = CompiledSimulator()
        _chain(sim)
        design = sim.compile()
        assert design.signal_ids == {"a": 0, "b": 1, "c": 2}
        # p0 feeds p1, so ranks are 0 and 1 and the sweep order respects them.
        assert design.comb_ranks == {0: 0, 1: 1}
        assert design.comb_order == [0, 1]
        assert design.levels == [[0], [1]]
        assert "def step(n):" in design.source

    def test_registration_order_breaks_rank_ties(self):
        sim = CompiledSimulator()
        src = sim.signal("src", width=8)
        outs = [sim.signal(f"o{i}", width=8) for i in range(3)]
        for out in outs:
            sim.add_comb(
                (lambda o: lambda: o.drive(src.value))(out),
                sensitive_to=[src],
                drives=[out],
            )
        design = sim.compile()
        assert design.comb_order == [0, 1, 2]
        assert design.levels == [[0, 1, 2]]

    def test_registration_after_freeze_recompiles(self):
        sim = CompiledSimulator()
        a, b, c = _chain(sim)
        sim.step(3)
        assert (a.value, b.value, c.value) == (3, 4, 5)
        d = sim.signal("d", width=8)
        sim.add_comb(lambda: d.drive(c.value * 2), sensitive_to=[c], drives=[d])
        sim.step()
        assert (c.value, d.value) == (6, 12)
        assert sim.design.signal_ids["d"] == 3

    def test_settle_without_step_reaches_fixpoint_once(self):
        sim = CompiledSimulator()
        a, b, c = _chain(sim)
        assert sim.settle() == 1  # registration leaves everything pending
        assert (b.value, c.value) == (1, 2)
        assert sim.settle() == 0  # already settled: no pass, no stats churn


class TestStatsParity:
    def test_quiet_design_stats_match_event_kernel(self):
        """Every counter except settle_iterations is identical on a design
        that is mostly idle (the event kernel counts the empty fixed-point
        check as an extra iteration; the compiled kernel needs no such
        pass by construction)."""

        def run(factory):
            sim = factory()
            src = sim.signal("src", width=8)
            out = sim.signal("out", width=8)

            def clocked():
                if sim.cycle % 5 == 0:
                    src.next = src.value + 1

            sim.add_clocked(clocked)
            sim.add_comb(lambda: out.drive(src.value * 2), sensitive_to=[src], drives=[out])
            sim.reset()
            sim.step(50)
            return sim.stats.as_dict()

        event = run(Simulator)
        compiled = run(CompiledSimulator)
        for counter in (
            "cycles", "settle_calls", "comb_activations",
            "clocked_activations", "fast_path_cycles",
        ):
            assert event[counter] == compiled[counter], counter
        assert compiled["fast_path_cycles"] > 30  # the design really was quiet


class TestWaitStateElision:
    def test_quiescent_gated_process_is_skipped_until_input_changes(self):
        sim = CompiledSimulator()
        req = sim.signal("req", width=1)
        ack = sim.signal("ack", width=1)
        runs = []

        def fsm():
            runs.append(sim.cycle)
            if req.value and not ack.value:
                ack.next = 1
                return True
            if ack.value and ack._next is None:
                ack.next = 0
                return True
            return False

        sim.add_clocked(fsm, sensitive_to=[req])

        def master():
            if sim.cycle == 10:
                req.next = 1
            elif sim.cycle == 12:
                req.next = 0

        sim.add_clocked(master)
        sim.reset()
        sim.step(30)
        # The FSM ran at reset wake-up, around the req pulse, and for its own
        # ack bookkeeping — but nowhere near all 30 cycles.
        assert ack.value == 0
        assert 0 < len(runs) < 12, runs
        assert any(cycle >= 11 for cycle in runs)  # it did see the request

    def test_same_cycle_drive_wakes_later_gated_process(self):
        """A clocked process that drive()s a gated process's declared input
        must wake it within the same clocked phase — the registration-order
        visibility the scan kernels give for free."""

        def run(factory):
            sim = factory()
            x = sim.signal("x", width=8)
            y = sim.signal("y", width=1)

            def driver():
                if sim.cycle == 4:
                    x.drive(9)

            def gated():
                if x.value == 9 and y._next is None and not y.value:
                    y.next = 1
                    return True
                return False

            sim.add_clocked(driver)
            sim.add_clocked(gated, sensitive_to=[x])
            recorder = []
            sim.add_monitor(lambda: recorder.append((x.value, y.value)))
            sim.reset()
            sim.step(8)
            return recorder

        assert run(Simulator) == run(CompiledSimulator)

    def test_undeclared_clocked_processes_always_run(self):
        sim = CompiledSimulator()
        sim.signal("unused", width=1)
        ticks = []
        sim.add_clocked(lambda: ticks.append(1))
        sim.step(25)
        assert len(ticks) == 25
        assert sim.stats.clocked_activations == 25


class TestKernelSelection:
    def test_factory_mapping(self):
        assert kernel_factory("compiled") is CompiledSimulator
        assert set(KERNELS) == {"event", "reference", "compiled"}
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            kernel_factory("vectorized")

    def test_build_system_kernel_name(self):
        from repro.soc.system import build_system

        source = "%device_name dev\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\nint ping(int x);\n"
        system = build_system(source, behaviors={"ping": lambda x: x + 1}, kernel="compiled")
        assert isinstance(system.simulator, CompiledSimulator)
        assert system.drivers["ping"](41) == 42

    def test_build_system_rejects_both_selectors(self):
        from repro.soc.system import build_system

        with pytest.raises(ValueError, match="not both"):
            build_system(
                "%device_name dev\n%bus_type plb\n%bus_width 32\n%base_address 0x0\nvoid f();\n",
                kernel="compiled",
                simulator_factory=Simulator,
            )

    def test_registry_builds_runner_on_requested_kernel(self):
        from repro.devices.registry import build_runner

        runner = build_runner("splice_plb", kernel="compiled")
        assert isinstance(runner.system.simulator, CompiledSimulator)

    def test_registry_zero_arg_builder_restricted_to_default_kernel(self):
        from repro.devices.registry import build_runner, register_runner

        register_runner("zero-arg-test", lambda: object(), replace=True)
        try:
            build_runner("zero-arg-test")  # default kernel: fine
            with pytest.raises(TypeError, match="simulator_factory"):
                build_runner("zero-arg-test", kernel="compiled")
        finally:
            from repro.devices import registry

            registry._BUILDERS.pop("zero-arg-test", None)


class TestProgramCache:
    """Persistent levelization/codegen cache keyed by the design digest."""

    def _build(self, cache_dir):
        sim = CompiledSimulator(program_cache=cache_dir)
        _chain(sim)
        sim.step(5)
        return sim

    def test_cold_build_populates_and_warm_build_hits(self, tmp_path):
        cold = self._build(tmp_path)
        assert cold.design.program_cache_hit is False
        assert cold.design.digest
        assert list(tmp_path.glob("*.json")), "no program entry written"

        warm = self._build(tmp_path)
        assert warm.design.program_cache_hit is True
        assert warm.design.digest == cold.design.digest
        assert warm.design.source == cold.design.source
        assert warm.design.comb_order == cold.design.comb_order
        assert warm.design.comb_ranks == cold.design.comb_ranks
        assert warm.cycle == cold.cycle == 5

    def test_different_topology_gets_different_digest(self, tmp_path):
        first = self._build(tmp_path)
        other = CompiledSimulator(program_cache=tmp_path)
        x = other.signal("x", width=8)
        y = other.signal("y", width=8)
        other.add_comb(lambda: y.drive(x.value), sensitive_to=[x], drives=[y])
        other.add_clocked(lambda: setattr(x, "next", x.value + 1))
        other.compile()
        assert other.design.digest != first.design.digest
        assert other.design.program_cache_hit is False

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cold = self._build(tmp_path)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        again = self._build(tmp_path)
        assert again.design.program_cache_hit is False
        assert again.design.source == cold.design.source

    def test_truncated_entry_recompiles_and_heals(self, tmp_path):
        cold = self._build(tmp_path)
        for entry in tmp_path.glob("*.json"):
            text = entry.read_text()
            entry.write_text(text[: len(text) // 2])  # torn write
        again = self._build(tmp_path)
        assert again.design.program_cache_hit is False
        assert again.design.source == cold.design.source
        # The recompile overwrote the torn entry: the next build hits.
        healed = self._build(tmp_path)
        assert healed.design.program_cache_hit is True

    def test_cached_program_is_cycle_exact(self, tmp_path):
        def run(sim_factory):
            sim = sim_factory()
            a, b, c = _chain(sim)
            sim.step(20)
            return (a.value, b.value, c.value, sim.cycle)

        fresh = run(CompiledSimulator)
        run(lambda: CompiledSimulator(program_cache=tmp_path))  # populate
        warm = run(lambda: CompiledSimulator(program_cache=tmp_path))
        assert warm == fresh

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        from repro.rtl import PROGRAM_CACHE_ENV

        monkeypatch.setenv(PROGRAM_CACHE_ENV, str(tmp_path))
        sim = CompiledSimulator()
        _chain(sim)
        sim.compile()
        assert sim.program_cache is not None
        assert list(tmp_path.glob("*.json"))

    def test_campaign_cache_exports_program_cache(self, tmp_path):
        from repro.campaign import CampaignSpec, run_campaign
        from repro.evaluation.scenarios import SCENARIOS

        spec = CampaignSpec(
            implementations=("splice_plb",),
            scenarios=SCENARIOS[:1],
            seeds=(0,),
            name="progcache-smoke",
            kernel="compiled",
        )
        result = run_campaign(spec, cache=tmp_path / "cache")
        assert result.meta["cells_executed"] == 1
        programs = tmp_path / "cache" / "programs"
        assert programs.is_dir() and list(programs.glob("*.json")), (
            "campaign run did not populate the compiled-program cache"
        )
