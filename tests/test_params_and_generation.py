"""Tests for the shared parameter structure and the hardware generators."""

import pytest

from repro.core.capabilities import capabilities_for
from repro.core.engine import Splice
from repro.core.generation.arbiter import build_arbiter_ir
from repro.core.generation.interface import build_interface_ir
from repro.core.generation.ir import EntityKind
from repro.core.generation.macros import standard_registry, build_context
from repro.core.generation.stubs import build_stub_ir, stub_states
from repro.core.generation.template import MacroRegistry, TemplateEngine, MacroContext
from repro.core.generation.vhdl import render_entity_vhdl
from repro.core.generation.verilog import render_entity_verilog
from repro.core.params import STATUS_FUNC_ID, build_params
from repro.core.syntax.errors import SpliceGenerationError
from repro.core.syntax.parser import parse_spec
from repro.core.syntax.validation import validate_spec

TIMER_SPEC = """\
%device_name hw_timer
%bus_type plb
%bus_width 32
%base_address 0x80004000
%user_type llong, unsigned long long, 64
%user_type ulong, unsigned long, 32
void disable();
void enable();
void set_threshold(llong thold);
llong get_threshold();
llong get_snapshot();
ulong get_clock();
ulong get_status();
"""


def _params(spec_text):
    spec = parse_spec(spec_text)
    bus = validate_spec(spec)
    return build_params(spec, bus), bus


class TestParams:
    def test_function_ids_start_after_status_register(self):
        params, _ = _params(TIMER_SPEC)
        assert params.funcs[0].func_id == STATUS_FUNC_ID + 1
        assert params.nmbr_funcs == 7

    def test_multi_instance_ids_are_consecutive(self):
        params, _ = _params(
            "%device_name d\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n"
            "void f(int x):3;\nint g(int y);\n"
        )
        assert params.func("f").instance_ids() == [1, 2, 3]
        assert params.func("g").func_id == 4
        assert params.total_instances == 4

    def test_func_id_width_covers_all_instances(self):
        params, _ = _params(TIMER_SPEC)
        assert (1 << params.func_id_width) > max(f.func_id for f in params.funcs)

    def test_splitting_flag_for_wide_types(self):
        params, _ = _params(TIMER_SPEC)
        assert params.func("set_threshold").splitting_f
        assert not params.func("get_clock").splitting_f

    def test_address_of_slots(self):
        params, _ = _params(TIMER_SPEC)
        assert params.address_of(0) == 0x80004000
        assert params.address_of(3) == 0x80004000 + 3 * 4

    def test_io_beats_split_and_packed(self):
        params, _ = _params(
            "%device_name d\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n"
            "void f(double*:4 xs, char*:8+ cs);\n"
        )
        func = params.func("f")
        assert func.input("xs").beats(32) == 8   # 4 doubles split into 8 words
        assert func.input("cs").beats(32) == 2   # 8 chars packed 4 per word

    def test_func_by_id_and_unknown_lookups(self):
        params, _ = _params(TIMER_SPEC)
        assert params.func_by_id(3).func_name == "set_threshold"
        with pytest.raises(KeyError):
            params.func("missing")
        with pytest.raises(KeyError):
            params.func_by_id(99)


class TestTemplateEngine:
    def test_unknown_macro_rejected(self):
        engine = TemplateEngine(MacroRegistry())
        with pytest.raises(SpliceGenerationError):
            engine.expand("%NOT_A_MACRO%", MacroContext(None))

    def test_standard_macros_expand(self):
        params, _ = _params(TIMER_SPEC)
        engine = TemplateEngine(standard_registry())
        out = engine.expand("%COMP_NAME% %BUS_WIDTH% %BASE_ADDR%", build_context(params))
        assert "hw_timer" in out and "32" in out and "80004000" in out.upper()

    def test_per_function_macros_require_function_context(self):
        params, _ = _params(TIMER_SPEC)
        engine = TemplateEngine(standard_registry())
        with pytest.raises(SpliceGenerationError):
            engine.expand("%MY_FUNC_ID%", build_context(params))
        out = engine.expand("%MY_FUNC_ID%", build_context(params).with_func(params.funcs[2]))
        assert out == "3"

    def test_duplicate_macro_registration_rejected(self):
        registry = MacroRegistry()
        registry.register("X", lambda ctx: "1")
        with pytest.raises(SpliceGenerationError):
            registry.register("X", lambda ctx: "2")
        registry.register("X", lambda ctx: "2", replace=True)


class TestGenerators:
    def test_stub_states_match_declaration_shape(self):
        params, _ = _params(TIMER_SPEC)
        assert stub_states(params.func("set_threshold")) == ["IN_thold", "CALC", "OUT_STATUS"]
        assert stub_states(params.func("get_status")) == ["TRIGGER", "CALC", "OUT_RESULT"]

    def test_stub_ir_contains_sis_ports_and_fsm(self):
        params, _ = _params(TIMER_SPEC)
        stub = build_stub_ir(params.func("get_snapshot"), params)
        names = {p.name for p in stub.ports}
        assert {"DATA_IN", "DATA_OUT", "IO_DONE", "CALC_DONE", "FUNC_ID"} <= names
        assert stub.kind is EntityKind.USER_LOGIC
        assert stub.fsms and stub.fsms[0].states[0].startswith(("IN_", "TRIGGER"))

    def test_arbiter_ir_has_port_set_per_instance(self):
        params, _ = _params(
            "%device_name d\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n"
            "void f(int x):2;\nint g(int y);\n"
        )
        arbiter = build_arbiter_ir(params)
        data_out_ports = [
            p for p in arbiter.ports
            if p.name.endswith("_DATA_OUT") and not p.name.startswith("SIS_")
        ]
        assert len(data_out_ports) == 3  # two instances of f, one g

    def test_interface_ir_dma_adds_overhead(self):
        plain, bus = _params(TIMER_SPEC)
        dma_spec = TIMER_SPEC.replace("%base_address 0x80004000", "%base_address 0x80004000\n%dma_support true")
        dma_params, _ = _params(dma_spec)
        plain_ir = build_interface_ir(plain, bus)
        dma_ir = build_interface_ir(dma_params, bus)
        assert dma_ir.overhead_luts > plain_ir.overhead_luts
        assert len(dma_ir.fsms) > len(plain_ir.fsms)

    def test_unknown_bus_interface_rejected(self):
        params, bus = _params(TIMER_SPEC)
        from repro.core.capabilities import BusCapabilities

        with pytest.raises(SpliceGenerationError):
            build_interface_ir(params, BusCapabilities(name="wishbone"))

    def test_text_backends_render_every_entity(self):
        params, bus = _params(TIMER_SPEC)
        for entity in (build_interface_ir(params, bus), build_arbiter_ir(params),
                       build_stub_ir(params.funcs[0], params)):
            vhdl = render_entity_vhdl(entity)
            verilog = render_entity_verilog(entity)
            assert entity.name in vhdl and "entity" in vhdl
            assert entity.name in verilog and "module" in verilog


class TestEngine:
    def test_generate_produces_figure_8_3_file_listing(self):
        result = Splice().generate(TIMER_SPEC)
        listing = result.hardware_file_listing()
        assert "plb_interface.vhd" in listing
        assert "user_hw_timer.vhd" in listing
        assert "func_set_threshold.vhd" in listing
        assert len([f for f in listing if f.startswith("func_")]) == 7

    def test_generated_text_has_no_unexpanded_macros(self):
        result = Splice().generate(TIMER_SPEC)
        for name in result.hardware_file_listing():
            assert "%COMP_NAME%" not in result.hardware_files[name]
            assert "%GEN_DATE%" not in result.hardware_files[name]

    def test_driver_sources_match_figure_8_7(self):
        result = Splice().generate(TIMER_SPEC)
        assert set(result.software_file_listing()) == {
            "splice_lib.h", "hw_timer_driver.h", "hw_timer_driver.c",
        }
        driver_c = result.driver_sources["hw_timer_driver.c"]
        assert "SET_ADDRESS" in driver_c and "WAIT_FOR_RESULTS" in driver_c
        assert "set_threshold" in driver_c

    def test_verilog_target_generates_verilog(self):
        spec = TIMER_SPEC.replace("%bus_width 32", "%bus_width 32\n%target_hdl verilog")
        result = Splice().generate(spec)
        assert any(name.endswith(".v") for name in result.hardware_file_listing())
        interface = result.hardware_files["plb_interface.v"]
        assert "module" in interface

    def test_write_to_creates_device_subdirectory(self, tmp_path):
        result = Splice().generate(TIMER_SPEC)
        written = result.write_to(tmp_path)
        assert (tmp_path / "hw_timer" / "plb_interface.vhd").exists()
        assert len(written) == len(result.hardware_files) + len(result.driver_sources)

    def test_capabilities_lookup(self):
        engine = Splice()
        assert "plb" in engine.supported_buses
        assert engine.capabilities_for("fcb").memory_mapped is False
        assert capabilities_for("apb").strictly_synchronous
