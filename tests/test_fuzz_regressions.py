"""Replay the fuzz regression corpus on every tier-1 run.

Every file in ``tests/corpus/`` is a shrunk counterexample a fuzz session
once found against a (deliberately or genuinely) broken kernel.  On current
kernels each must verdict ``pass`` — all three kernels agree on traces,
outcomes, monitor violations, and leap accounting.  A non-pass verdict here
means a previously-fixed divergence has come back (or a new one landed on
exactly the workload shape that broke before), which is the highest-signal
failure the suite can produce.

The corpus loads without Hypothesis: replay must work in the minimal test
environment even though *generating* new cases needs the fuzz extras.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import Counterexample, corpus_files, replay_case

CORPUS_DIR = Path(__file__).parent / "corpus"

_FILES = corpus_files(CORPUS_DIR)


def test_corpus_is_present():
    """The corpus ships with the repo; an empty directory means a packaging
    or lookup bug, not a clean bill of health."""
    assert _FILES, f"no corpus cases found under {CORPUS_DIR}"


@pytest.mark.parametrize("path", _FILES, ids=lambda p: p.stem)
def test_corpus_case_replays_clean(path):
    record = Counterexample.load(path)
    # The stored token must still match the case (guards hand-edited JSON),
    # and the filename must agree with the record it holds.
    assert path.name == record.filename
    verdict = replay_case(record)
    assert verdict.ok, (
        f"corpus regression: {path.name} (historically "
        f"{record.verdict.kind}: {record.verdict.detail!r}) now verdicts "
        f"{verdict.kind}: {verdict.detail!r} on kernel {verdict.kernel}"
    )
