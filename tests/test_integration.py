"""Integration tests: specification -> generated hardware -> simulated SoC -> drivers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.syntax.errors import SpliceGenerationError
from repro.soc.system import build_system

BASE_PLB = "%device_name dev\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n"
BASE_FCB = "%device_name dev\n%bus_type fcb\n%bus_width 32\n"
BASE_APB = "%device_name dev\n%bus_type apb\n%bus_width 32\n%base_address 0x40000000\n"


def _mask32(value):
    return value & 0xFFFFFFFF


class TestScalarFunctions:
    @pytest.mark.parametrize("base", [BASE_PLB, BASE_FCB, BASE_APB], ids=["plb", "fcb", "apb"])
    def test_two_argument_add(self, base):
        system = build_system(base + "int add(int a, int b);\n",
                              behaviors={"add": lambda a, b: _mask32(a + b)})
        assert system.drivers["add"](40, 2) == 42
        assert system.monitor.clean

    def test_sixty_four_bit_round_trip(self):
        system = build_system(
            BASE_PLB + "%user_type llong, unsigned long long, 64\nllong echo(llong value);\n",
            behaviors={"echo": lambda value: value},
        )
        assert system.drivers["echo"](0xDEADBEEFCAFEBABE) == 0xDEADBEEFCAFEBABE

    def test_void_blocking_function_waits_for_completion(self):
        seen = []
        system = build_system(
            BASE_PLB + "void record(int x);\n",
            behaviors={"record": lambda x: seen.append(x)},
            calc_latencies={"record": 20},
        )
        system.drivers["record"](7)
        assert seen == [7]  # completed before the driver returned

    def test_no_argument_function(self):
        system = build_system(BASE_PLB + "int answer();\n", behaviors={"answer": lambda: 42})
        assert system.drivers["answer"]() == 42


class TestArrayTransfers:
    def test_explicit_array(self):
        system = build_system(
            BASE_PLB + "int sum4(int*:4 xs);\n",
            behaviors={"sum4": lambda xs: _mask32(sum(xs))},
        )
        assert system.drivers["sum4"]([1, 2, 3, 4]) == 10

    def test_implicit_array(self):
        system = build_system(
            BASE_PLB + "int total(char n, int*:n xs);\n",
            behaviors={"total": lambda n, xs: _mask32(sum(xs))},
        )
        assert system.drivers["total"](3, [5, 6, 7]) == 18
        assert system.drivers["total"](1, [100]) == 100

    def test_packed_transfer_reduces_transactions(self):
        packed = build_system(
            BASE_PLB + "int sum8(char*:8+ xs);\n",
            behaviors={"sum8": lambda xs: _mask32(sum(xs))},
        )
        unpacked = build_system(
            BASE_PLB.replace("device_name dev", "device_name dev2") + "int sum8(char*:8 xs);\n",
            behaviors={"sum8": lambda xs: _mask32(sum(xs))},
        )
        data = list(range(8))
        assert packed.drivers["sum8"](data) == sum(data)
        assert unpacked.drivers["sum8"](data) == sum(data)
        assert packed.drivers["sum8"].last_call.transactions < unpacked.drivers["sum8"].last_call.transactions

    def test_array_of_doubles_splits(self):
        system = build_system(
            BASE_PLB + "int count_big(double*:3 xs);\n",
            behaviors={"count_big": lambda xs: sum(1 for x in xs if x > 0xFFFFFFFF)},
        )
        assert system.drivers["count_big"]([1, 0x1_0000_0000, 0x2_0000_0000]) == 2

    def test_pointer_output(self):
        system = build_system(
            BASE_PLB + "int*:4 firstn(int seed);\n",
            behaviors={"firstn": lambda seed: [seed + i for i in range(4)]},
        )
        assert system.drivers["firstn"](10) == [10, 11, 12, 13]

    def test_fcb_burst_path(self):
        system = build_system(
            BASE_FCB + "%burst_support true\nint sum(char n, int*:n xs);\n",
            behaviors={"sum": lambda n, xs: _mask32(sum(xs))},
        )
        data = list(range(1, 11))
        assert system.drivers["sum"](len(data), data) == sum(data)
        assert system.monitor.clean


class TestAdvancedFeatures:
    def test_dma_transfer_delivers_same_result(self):
        dma_system = build_system(
            BASE_PLB + "%dma_support true\nint sum(char n, int*:n^ xs);\n",
            behaviors={"sum": lambda n, xs: _mask32(sum(xs))},
        )
        data = list(range(16))
        assert dma_system.drivers["sum"](len(data), data) == sum(data)

    def test_dma_reduces_cycles_for_large_transfers(self):
        plain = build_system(
            BASE_PLB + "void sink(int*:24 xs);\n",
            behaviors={"sink": lambda xs: None},
        )
        dma = build_system(
            BASE_PLB + "%dma_support true\nvoid sink(int*:24^ xs);\n",
            behaviors={"sink": lambda xs: None},
        )
        data = list(range(24))
        plain.drivers["sink"](data)
        dma.drivers["sink"](data)
        assert dma.drivers["sink"].last_call.cycles < plain.drivers["sink"].last_call.cycles

    def test_multiple_instances_are_independent(self):
        system = build_system(
            BASE_PLB + "int scale(int x):3;\n",
            behaviors={"scale": [lambda x: x * 1, lambda x: x * 2, lambda x: x * 3]},
        )
        driver = system.drivers["scale"]
        assert driver(10, inst_index=0) == 10
        assert driver(10, inst_index=1) == 20
        assert driver(10, inst_index=2) == 30

    def test_instance_index_out_of_range(self):
        system = build_system(BASE_PLB + "int f(int x):2;\n", behaviors={"f": lambda x: x})
        with pytest.raises(SpliceGenerationError):
            system.drivers["f"](1, inst_index=2)

    def test_nowait_returns_before_calculation_completes(self):
        seen = []
        system = build_system(
            BASE_PLB + "nowait fire(int x);\n",
            behaviors={"fire": lambda x: seen.append(x)},
            calc_latencies={"fire": 50},
        )
        system.drivers["fire"](9)
        assert seen == []           # still calculating when the driver returned
        system.run(100)
        assert seen == [9]          # ...but it completes on its own

    def test_multiple_functions_share_one_bus(self):
        system = build_system(
            BASE_PLB + "int inc(int x);\nint dec(int x);\nint neg(int x);\n",
            behaviors={
                "inc": lambda x: _mask32(x + 1),
                "dec": lambda x: _mask32(x - 1),
                "neg": lambda x: _mask32(-x),
            },
        )
        assert system.drivers["inc"](5) == 6
        assert system.drivers["dec"](5) == 4
        assert system.drivers["neg"](5) == _mask32(-5)

    def test_back_to_back_calls_reuse_the_same_stub(self):
        system = build_system(
            BASE_PLB + "int double_it(int x);\n",
            behaviors={"double_it": lambda x: _mask32(2 * x)},
        )
        driver = system.drivers["double_it"]
        for value in (1, 2, 3, 4, 5):
            assert driver(value) == 2 * value
        assert system.peripheral.stub("double_it").activations == 5

    def test_default_behavior_returns_zero(self):
        system = build_system(BASE_PLB + "int stubbed(int x);\n")
        assert system.drivers["stubbed"](99) == 0


class TestStrictlySynchronous:
    def test_apb_polls_status_register(self):
        system = build_system(
            BASE_APB + "int slow(int x);\n",
            behaviors={"slow": lambda x: x + 1},
            calc_latencies={"slow": 40},
        )
        driver = system.drivers["slow"]
        assert driver(5) == 6
        assert driver.last_call.polls >= 1

    def test_apb_parameterless_function(self):
        system = build_system(BASE_APB + "int seven();\n", behaviors={"seven": lambda: 7})
        assert system.drivers["seven"]() == 7

    def test_apb_multi_word_output(self):
        system = build_system(
            BASE_APB + "%user_type llong, unsigned long long, 64\nllong wide();\n",
            behaviors={"wide": lambda: 0x0102030405060708},
        )
        assert system.drivers["wide"]() == 0x0102030405060708


class TestCycleAccounting:
    def test_larger_transfers_cost_more_cycles(self):
        system = build_system(
            BASE_PLB + "void sink(char n, int*:n xs);\n",
            behaviors={"sink": lambda n, xs: None},
        )
        driver = system.drivers["sink"]
        driver(2, [1, 2])
        small = driver.last_call.cycles
        driver(10, list(range(10)))
        large = driver.last_call.cycles
        assert large > small

    def test_fcb_is_faster_than_opb_for_the_same_interface(self):
        body = "int add(int a, int b);\n"
        fcb = build_system(BASE_FCB + body, behaviors={"add": lambda a, b: a + b})
        opb = build_system(
            "%device_name dev\n%bus_type opb\n%bus_width 32\n%base_address 0x80000000\n" + body,
            behaviors={"add": lambda a, b: a + b},
        )
        fcb.drivers["add"](1, 2)
        opb.drivers["add"](1, 2)
        assert fcb.drivers["add"].last_call.cycles < opb.drivers["add"].last_call.cycles


@settings(max_examples=15, deadline=None)
@given(values=st.lists(st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=12))
def test_property_implicit_array_sum_round_trip(values):
    """The full stack (driver -> bus -> adapter -> stub) preserves array contents."""
    system = build_system(
        BASE_PLB + "int total(char n, int*:n xs);\n",
        behaviors={"total": lambda n, xs: _mask32(sum(xs))},
    )
    assert system.drivers["total"](len(values), values) == _mask32(sum(values))
