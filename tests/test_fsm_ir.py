"""FSM IR unit tests: static diagnostics and backend equivalence.

Three execution forms exist for every machine — the tree-walking
interpreter (:meth:`BoundFsm.tick_interpreted`, the semantic oracle), the
standalone generated tick (:attr:`BoundFsm.tick`, the scan-kernel backend)
and the compiled-kernel lowering (inlined into the fused step loop).  The
randomized tests here prove all three produce identical signal traces and
identical machine state on machines the generator dreams up; the
full-system tests prove the IR ports of the in-tree machines cycle-exact
against the retained hand-written Python ticks (``fsm_backend="python"``).
"""

import pytest

from repro.devices.baselines import build_naive_plb_system, build_optimized_fcb_system
from repro.devices.interpolator import build_splice_interpolator, interpolate_fixed_point
from repro.evaluation.scenarios import SCENARIOS
from repro.rtl import (
    BoundFsm,
    CompiledSimulator,
    FsmError,
    FsmSpec,
    Simulator,
    TraceRecorder,
    detect_drive_conflicts,
    use_backend,
)
from repro.rtl.fsm import (
    Active,
    Drive,
    Exec,
    Goto,
    If,
    Pulse,
    Schedule,
    StateDispatch,
)
from repro.rtl.module import Module


def _clocked_spec(**overrides):
    base = dict(
        name="t",
        entry=(StateDispatch(),),
        states={"a": (Goto("b"),), "b": (Goto("a"),)},
        signals=(),
    )
    base.update(overrides)
    return FsmSpec(**base)


class TestDiagnostics:
    """Malformed machines are rejected at build time, construct named."""

    def test_transition_to_unknown_state_is_rejected(self):
        with pytest.raises(FsmError, match="unknown state 'missing'"):
            _clocked_spec(states={"a": (Goto("missing"),)})

    def test_unknown_initial_state_is_rejected(self):
        with pytest.raises(FsmError, match="initial state"):
            _clocked_spec(initial="nope")

    def test_unreachable_state_is_rejected(self):
        with pytest.raises(FsmError, match="unreachable state.*orphan"):
            _clocked_spec(states={"a": (Goto("a"),), "orphan": ()})

    def test_externally_entered_state_is_reachable(self):
        spec = _clocked_spec(
            states={"a": (Goto("a"),), "helper_entered": ()},
            external_states=("helper_entered",),
        )
        assert "helper_entered" in spec.states

    def test_clocked_machine_may_not_drive(self):
        with pytest.raises(FsmError, match="conflicting-drive hazard"):
            _clocked_spec(states={"a": (Drive("x", "1"),)}, signals=("x",))

    def test_comb_machine_may_not_schedule(self):
        with pytest.raises(FsmError, match="may only drive"):
            FsmSpec(
                name="c", kind="comb",
                entry=(Schedule("x", "1"),), signals=("x",),
            )

    def test_clocked_machine_needs_exactly_one_dispatch(self):
        with pytest.raises(FsmError, match="exactly one\\s+StateDispatch"):
            _clocked_spec(entry=())
        with pytest.raises(FsmError, match="exactly one\\s+StateDispatch"):
            _clocked_spec(entry=(StateDispatch(), StateDispatch()))

    def test_redispatch_outside_state_body_is_rejected(self):
        from repro.rtl.fsm import Redispatch

        with pytest.raises(FsmError, match="Redispatch outside a state body"):
            _clocked_spec(
                entry=(StateDispatch(), If("m.flag", (Redispatch(),)))
            )

    def test_binding_mismatch_is_rejected(self):
        spec = _clocked_spec(
            states={"a": (Schedule("x", "1"), Goto("a"))}, signals=("x",)
        )
        owner = Module("owner")
        with pytest.raises(FsmError, match="signal bindings mismatch"):
            BoundFsm(spec, owner, signals={})

    def test_cross_machine_drive_conflict_is_reported(self):
        sim = Simulator()
        shared = sim.signal("shared", width=8)

        def comb_machine(name):
            owner = Module(name)
            spec = FsmSpec(
                name=name, kind="comb",
                entry=(Drive("out", "1"),), signals=("out",),
            )
            return BoundFsm(spec, owner, signals={"out": shared})

        conflicts = detect_drive_conflicts([comb_machine("m1"), comb_machine("m2")])
        assert len(conflicts) == 1
        assert "'shared'" in conflicts[0]
        assert "m1" in conflicts[0] and "m2" in conflicts[0]
        assert detect_drive_conflicts([comb_machine("m3")]) == []


class _RandomMachine(Module):
    """A machine assembled from a seeded random walk over the IR op set."""

    def __init__(self, name: str, seed: int, form: str) -> None:
        super().__init__(name)
        self.inp = self.signal("IN", width=8)
        self.out = self.signal("OUT", width=8)
        self.strobe = self.signal("STROBE", width=1)
        self.r0 = 0
        self.r1 = 0
        self._state = "s0"
        spec = self._random_spec(seed)
        self.fsm = BoundFsm(
            spec, self,
            signals={"inp": self.inp, "out": self.out, "strobe": self.strobe},
        )
        tick = self.fsm.tick_interpreted if form == "interpreted" else self.fsm.tick
        # Declaring sensitivity opts the machine into compiled-kernel
        # lowering; the generated bodies always report activity, so elision
        # never fires and the comparison isolates pure op semantics.
        self.clocked(tick, sensitive_to=[self.inp])

    @staticmethod
    def _random_spec(seed: int) -> FsmSpec:
        # A tiny deterministic LCG keeps the generator dependency-free.
        state = seed * 2654435761 % (2**32) or 1

        def rand(n):
            nonlocal state
            state = (1103515245 * state + 12345) % (2**31)
            return state % n

        n_states = 2 + rand(3)
        names = [f"s{i}" for i in range(n_states)]
        states = {}
        for index, name in enumerate(names):
            body = []
            for _ in range(1 + rand(3)):
                choice = rand(5)
                if choice == 0:
                    body.append(Exec(f"m.r0 = (m.r0 + {1 + rand(7)}) & 255"))
                elif choice == 1:
                    body.append(Exec(f"m.r1 = (m.r1 ^ (m.r0 >> {rand(3)})) & 255"))
                elif choice == 2:
                    body.append(Schedule("out", f"(m.r0 + m.r1 + {rand(16)}) & 255"))
                elif choice == 3:
                    body.append(Pulse("strobe"))
                else:
                    body.append(
                        If(
                            f"inp._value & {1 << rand(4)}",
                            (Exec(f"m.r0 = (m.r0 * 3 + {rand(5)}) & 255"),),
                            orelse=(Schedule("out", "m.r1"),),
                        )
                    )
            body.append(
                If(
                    f"inp._value > {rand(200)}",
                    (Goto(names[rand(n_states)]),),
                    orelse=(Goto(names[rand(n_states)]),),
                )
            )
            body.append(Active("True"))
            states[name] = tuple(body)
        return FsmSpec(
            name=f"rand{seed}",
            entry=(
                If(
                    f"inp._value == {255}",
                    (Exec("m.r0 = 0; m.r1 = 0"),),
                ),
                StateDispatch(),
            ),
            states=states,
            # The generator does not guarantee every state is a Goto target.
            external_states=tuple(names),
            signals=("inp", "out", "strobe"),
        )


class TestRandomizedEquivalence:
    """Interpreted, standalone and lowered execution are trace-identical."""

    @pytest.mark.parametrize("seed", range(12))
    def test_three_forms_agree(self, seed):
        def run(factory, form):
            sim = factory()
            machine = _RandomMachine("rm", seed, form)
            sim.register_module(machine)
            recorder = TraceRecorder(sim, sim.signals)
            sim.reset()
            for cycle in range(80):
                machine.inp.drive((cycle * 37 + seed * 11) % 256)
                sim.step()
            return recorder.trace.samples, machine.r0, machine.r1, machine._state

        oracle = run(Simulator, "interpreted")
        standalone = run(Simulator, "standalone")
        lowered = run(CompiledSimulator, "standalone")
        assert standalone == oracle, f"standalone tick diverges from interpreter (seed {seed})"
        assert lowered == oracle, f"lowered machine diverges from interpreter (seed {seed})"

    def test_lowering_actually_happened(self):
        sim = CompiledSimulator()
        machine = _RandomMachine("rm", 1, "standalone")
        sim.register_module(machine)
        sim.reset()
        design = sim.compile()
        assert design.fused_clocked == 1
        assert len(design.fsm_fingerprints) == 1
        profile = sim.process_profile()
        assert profile[0]["kind"] == "lowered"
        assert profile[0]["label"].endswith("rand1")


def _run_scenario_trace(build, kernel_factory):
    built = build(kernel_factory)
    system = getattr(built, "system", None)
    simulator = getattr(built, "simulator", None) or system.simulator
    recorder = TraceRecorder(simulator, simulator.signals)
    scenario = next(s for s in SCENARIOS if s.number == 2)
    sets = scenario.generate_inputs()
    outcome = built.run_scenario(sets)
    monitor = getattr(system, "monitor", None) if system is not None else None
    violations = (
        [(v.cycle, v.rule, v.detail) for v in monitor.violations]
        if monitor is not None
        else None
    )
    return recorder.trace.samples, (
        outcome["result"],
        outcome["cycles"],
        outcome["transactions"],
        violations,
    )


class TestRetainedPythonPathParity:
    """IR machines are cycle-exact against the retained hand-written ticks.

    The ``python`` backend registers the original tick methods; building
    the same system on the same kernel with both backends and comparing
    every signal on every cycle proves each port faithful.
    """

    @pytest.mark.parametrize("bus", ["plb", "fcb", "opb", "apb"])
    @pytest.mark.parametrize("kernel", [Simulator, CompiledSimulator])
    def test_splice_systems_match_legacy(self, bus, kernel):
        def build(factory):
            return build_splice_interpolator(f"splice_{bus}", simulator_factory=factory)

        ir_trace, ir_outcome = _run_scenario_trace(build, kernel)
        with use_backend("python"):
            py_trace, py_outcome = _run_scenario_trace(build, kernel)
        assert ir_outcome == py_outcome
        assert ir_trace == py_trace, f"IR port of {bus} diverges from the Python path"
        scenario = next(s for s in SCENARIOS if s.number == 2)
        assert ir_outcome[0] == interpolate_fixed_point(*scenario.generate_inputs()) & 0xFFFFFFFF

    @pytest.mark.parametrize(
        "builder", [build_naive_plb_system, build_optimized_fcb_system]
    )
    def test_baselines_match_legacy(self, builder):
        def build(factory):
            return builder(simulator_factory=factory)

        for kernel in (Simulator, CompiledSimulator):
            ir_trace, ir_outcome = _run_scenario_trace(build, kernel)
            with use_backend("python"):
                py_trace, py_outcome = _run_scenario_trace(build, kernel)
            assert ir_outcome == py_outcome
            assert ir_trace == py_trace

    def test_python_backend_still_selectable_per_module(self):
        with use_backend("python"):
            system = build_splice_interpolator("splice_plb").system
        assert system.master.fsm is None  # retained tick registered
        system2 = build_splice_interpolator("splice_plb").system
        assert system2.master.fsm is not None
