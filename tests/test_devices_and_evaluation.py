"""Tests for the example devices, baselines, resource model and evaluation harness."""

import pytest

from repro.devices.baselines import (
    build_naive_plb_system,
    build_optimized_fcb_system,
    naive_plb_resource_ir,
    optimized_fcb_resource_ir,
)
from repro.devices.interpolator import (
    CALCULATION_LATENCY,
    build_splice_interpolator,
    interpolate_fixed_point,
)
from repro.devices.timer import STATUS_ENABLED_BIT, STATUS_FIRED_BIT, build_timer_system
from repro.evaluation.experiments import (
    IMPLEMENTATIONS,
    cycle_ratio_summary,
    resource_ratio_summary,
    run_cycles_experiment,
    run_resource_experiment,
)
from repro.evaluation.report import cycles_report, format_table, ratio_report, resources_report, scenario_report
from repro.evaluation.scenarios import SCENARIOS, scenario, scenario_table
from repro.resources.estimator import estimate_entities, estimate_entity


class TestTimerDevice:
    def test_threshold_round_trip(self):
        timer = build_timer_system()
        drivers = timer.drivers
        drivers["set_threshold"](5_000)
        assert drivers["get_threshold"]() == 5_000
        assert timer.core.threshold == 5_000

    def test_timer_fires_after_threshold_cycles(self):
        timer = build_timer_system()
        drivers = timer.drivers
        drivers["disable"]()
        drivers["set_threshold"](200)
        drivers["enable"]()
        status = drivers["get_status"]()
        assert status & (1 << STATUS_ENABLED_BIT)
        timer.system.run(400)  # let the counter pass the threshold
        status = drivers["get_status"]()
        assert status & (1 << STATUS_FIRED_BIT)
        # Reading the status clears the fired bit (Figure 8.8 semantics).
        assert not drivers["get_status"]() & (1 << STATUS_FIRED_BIT)

    def test_snapshot_increases_while_enabled(self):
        timer = build_timer_system()
        drivers = timer.drivers
        drivers["set_threshold"](1_000_000)
        drivers["enable"]()
        first = drivers["get_snapshot"]()
        timer.system.run(100)
        second = drivers["get_snapshot"]()
        assert second > first

    def test_disable_pauses_counting(self):
        timer = build_timer_system()
        drivers = timer.drivers
        drivers["set_threshold"](1_000_000)
        drivers["enable"]()
        timer.system.run(50)
        drivers["disable"]()
        frozen = drivers["get_snapshot"]()
        timer.system.run(50)
        assert drivers["get_snapshot"]() == frozen

    def test_get_clock_reports_bus_clock(self):
        timer = build_timer_system(clock_rate_hz=50_000_000)
        assert timer.drivers["get_clock"]() == 50_000_000

    def test_generated_files_match_figure_8_3(self):
        timer = build_timer_system()
        listing = timer.system.generation.hardware_file_listing()
        for expected in ("plb_interface.vhd", "user_hw_timer.vhd", "func_enable.vhd",
                         "func_get_snapshot.vhd"):
            assert expected in listing


class TestInterpolator:
    def test_fixed_point_function_is_deterministic(self):
        sets = ([0, 100], [10, 20], [50, 75])
        assert interpolate_fixed_point(*sets) == interpolate_fixed_point(*sets)

    def test_interpolation_between_samples(self):
        result = interpolate_fixed_point([0, 100], [0, 100], [50])
        assert result == 50 << 16  # halfway between 0 and 100 in 16.16 fixed point

    @pytest.mark.parametrize("number", [1, 2, 3, 4])
    @pytest.mark.parametrize("bus", ["plb", "opb", "fcb", "apb"])
    def test_splice_implementations_agree_with_reference(self, bus, number):
        """Figure 9.1 scenario diversity: all four buses x all four scenarios."""
        device = build_splice_interpolator(f"splice_{bus}")
        sets = scenario(number).generate_inputs()
        outcome = device.run_scenario(sets)
        assert outcome["result"] == interpolate_fixed_point(*sets) & 0xFFFFFFFF
        assert outcome["cycles"] > CALCULATION_LATENCY

    @pytest.mark.parametrize("number", [1, 4])
    def test_dma_implementation_agrees_with_reference(self, number):
        device = build_splice_interpolator("splice_plb_dma")
        sets = scenario(number).generate_inputs()
        outcome = device.run_scenario(sets)
        assert outcome["result"] == interpolate_fixed_point(*sets) & 0xFFFFFFFF

    def test_scenario_cycles_grow_with_size_on_every_bus(self):
        """Each bus sees monotonically growing cost across Figure 9.1 scenarios."""
        for bus in ("plb", "opb", "fcb", "apb"):
            device = build_splice_interpolator(f"splice_{bus}")
            cycles = [
                device.run_scenario(scenario(n).generate_inputs())["cycles"]
                for n in (1, 2, 3, 4)
            ]
            assert cycles == sorted(cycles), f"{bus}: {cycles}"

    def test_baselines_agree_with_reference(self):
        sets = scenario(1).generate_inputs()
        expected = interpolate_fixed_point(*sets) & 0xFFFFFFFF
        assert build_naive_plb_system().run_scenario(sets)["result"] == expected
        assert build_optimized_fcb_system().run_scenario(sets)["result"] == expected

    def test_baseline_systems_can_run_repeatedly(self):
        system = build_naive_plb_system()
        first = system.run_scenario(scenario(1).generate_inputs())
        second = system.run_scenario(scenario(1).generate_inputs())
        assert first["result"] == second["result"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            build_splice_interpolator("splice_wishbone")


class TestScenarios:
    def test_figure_9_1_counts(self):
        # Note: Figure 9.1 lists scenario 3 as (8, 3, 6) with a printed total
        # of 16; the set sizes themselves sum to 17, and we keep the set
        # sizes (the totals for the other scenarios match exactly).
        rows = scenario_table()
        assert [r["total"] for r in rows] == [5, 10, 17, 28]
        assert rows[2] == {"scenario": 3, "set1": 8, "set2": 3, "set3": 6, "total": 17}

    def test_generated_inputs_match_counts_and_are_deterministic(self):
        for s in SCENARIOS:
            a = s.generate_inputs(seed=1)
            b = s.generate_inputs(seed=1)
            assert a == b
            assert [len(x) for x in a] == [s.set1, s.set2, s.set3]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario(9)


class TestResources:
    def test_entity_estimate_scales_with_structure(self):
        small = estimate_entity(optimized_fcb_resource_ir())
        large = estimate_entity(naive_plb_resource_ir())
        assert large.flip_flops > small.flip_flops
        assert large.slices > 0 and small.slices > 0

    def test_reports_compose(self):
        combined = estimate_entities([naive_plb_resource_ir(), optimized_fcb_resource_ir()], label="both")
        assert combined.luts == pytest.approx(
            estimate_entity(naive_plb_resource_ir()).luts + estimate_entity(optimized_fcb_resource_ir()).luts
        )
        assert combined.label == "both"
        assert "registers" in combined.breakdown


class TestEvaluation:
    @pytest.fixture(scope="class")
    def cycles(self):
        return run_cycles_experiment()

    @pytest.fixture(scope="class")
    def resources(self):
        return run_resource_experiment()

    def test_every_implementation_and_scenario_is_measured(self, cycles):
        assert set(cycles) == set(IMPLEMENTATIONS)
        for per_scenario in cycles.values():
            assert set(per_scenario) == {1, 2, 3, 4}
            assert all(v > 0 for v in per_scenario.values())

    def test_cycles_grow_with_scenario_size(self, cycles):
        for label in ("simple_plb", "splice_plb", "splice_fcb", "optimized_fcb"):
            values = [cycles[label][n] for n in (1, 2, 3, 4)]
            assert values == sorted(values)

    def test_figure_9_2_ordering(self, cycles):
        """Who wins, per the paper: naive slowest, optimized FCB fastest."""
        for n in (1, 2, 3, 4):
            assert cycles["splice_plb"][n] < cycles["simple_plb"][n]
            assert cycles["splice_fcb"][n] < cycles["splice_plb"][n]
            assert cycles["optimized_fcb"][n] <= cycles["splice_fcb"][n]

    def test_section_9_3_1_ratios_roughly_match_paper(self, cycles):
        ratios = cycle_ratio_summary(cycles)
        assert 0.15 <= ratios["splice_plb_vs_naive"] <= 0.40        # paper: ~25%
        assert 0.30 <= ratios["splice_fcb_vs_naive"] <= 0.60        # paper: ~43%
        assert 0.02 <= ratios["splice_fcb_vs_optimized"] <= 0.30    # paper: ~13% slower
        assert -0.10 <= ratios["dma_gain_vs_splice_plb"] <= 0.15    # paper: 1-4%

    def test_dma_crossover_with_transfer_size(self, cycles):
        """DMA hurts the small scenario and helps the large one (Section 9.2.1)."""
        assert cycles["splice_plb_dma"][1] > cycles["splice_plb"][1]
        assert cycles["splice_plb_dma"][4] < cycles["splice_plb"][4]

    def test_figure_9_3_ordering(self, resources):
        slices = {label: resources[label].slices for label in IMPLEMENTATIONS}
        assert slices["splice_plb"] < slices["simple_plb"]
        assert slices["splice_fcb"] < slices["simple_plb"]
        assert slices["splice_plb_dma"] > slices["splice_plb"]

    def test_section_9_3_2_ratios_roughly_match_paper(self, resources):
        ratios = resource_ratio_summary(resources)
        assert 0.10 <= ratios["splice_plb_vs_naive"] <= 0.45        # paper: ~23%
        assert 0.10 <= ratios["splice_fcb_vs_naive"] <= 0.45        # paper: ~28%
        assert -0.15 <= ratios["splice_fcb_vs_optimized"] <= 0.15   # paper: ~2%
        assert 0.40 <= ratios["dma_overhead_vs_splice_plb"] <= 0.80  # paper: 57-69%

    def test_reports_render(self, cycles, resources):
        assert "Scenario" in scenario_report(scenario_table())
        assert "Scenario 4" in cycles_report(cycles)
        assert "Slices" in resources_report(resources)
        assert "%" in ratio_report(cycle_ratio_summary(cycles), "ratios")
        assert "a" in format_table(["a"], [["1"]])
