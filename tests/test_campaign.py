"""Tests for the campaign subsystem: specs, sweeps, executors, cache, CLI."""

import json
import os

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignResult,
    CampaignSpec,
    ResultCache,
    ScenarioSweep,
    SerialExecutor,
    ShardedExecutor,
    cell_digest,
    paper_grid,
    run_campaign,
    sweep_grid,
)
from repro.campaign.executor import execute_cells
from repro.devices.registry import build_runner, known_labels, register_runner
from repro.evaluation.scenarios import SCENARIOS, Scenario, scenario


class TestSpec:
    def test_cell_count_and_order_are_deterministic(self):
        spec = CampaignSpec(
            implementations=("splice_plb", "splice_fcb"),
            scenarios=SCENARIOS[:2],
            seeds=(0, 7),
            repeats=2,
        )
        cells = spec.cells()
        assert len(cells) == spec.cell_count == 2 * 2 * 2 * 2
        assert cells == spec.cells()
        assert cells[0].label == "splice_plb"

    def test_repeats_vary_the_effective_seed(self):
        spec = CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS[:1], repeats=3, seeds=(5,))
        cells = spec.cells()
        assert cells[0].effective_seed == 5  # repeat 0 == the plain seed
        assert len({cell.effective_seed for cell in cells}) == 3
        inputs = [cell.generate_inputs() for cell in cells]
        assert inputs[0] != inputs[1] != inputs[2]

    def test_mixed_seed_repeat_grids_never_alias_inputs(self):
        """seed=0/repeat=1 must not draw the same data as seed=1/repeat=0."""
        spec = CampaignSpec(
            implementations=("splice_plb",), scenarios=SCENARIOS[:1], seeds=(0, 1, 2), repeats=3
        )
        seeds = [cell.effective_seed for cell in spec.cells()]
        assert len(set(seeds)) == len(seeds)

    def test_round_trips_through_dict(self):
        spec = sweep_grid(ScenarioSweep(mode="geometric", count=3), seeds=(1, 2), repeats=2)
        clone = CampaignSpec.from_dict(spec.describe())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(implementations=(), scenarios=SCENARIOS)
        with pytest.raises(ValueError):
            CampaignSpec(implementations=("splice_plb",), scenarios=())
        with pytest.raises(ValueError):
            CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS, repeats=0)
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            CampaignSpec(implementations=("splice_plb",), kernel="vectorized")


class TestKernelSelection:
    def test_kernel_is_part_of_cell_identity_and_digest(self):
        spec_event = CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS[:1])
        spec_compiled = CampaignSpec(
            implementations=("splice_plb",), scenarios=SCENARIOS[:1], kernel="compiled"
        )
        event_cell = spec_event.cells()[0]
        compiled_cell = spec_compiled.cells()[0]
        assert event_cell.kernel == "event"
        assert compiled_cell.kernel == "compiled"
        assert event_cell.key != compiled_cell.key
        assert event_cell.describe()["kernel"] == "event"
        # The cache must never serve one kernel's outcome for another.
        assert cell_digest(event_cell) != cell_digest(compiled_cell)
        # Kernel survives the spec round trip.
        assert CampaignSpec.from_dict(spec_compiled.describe()).kernel == "compiled"

    def test_compiled_kernel_campaign_is_bit_identical_to_event(self):
        """The paper grid yields byte-for-byte equal outcomes on both
        scheduling kernels — the campaign-level cycle-exactness proof."""
        event = run_campaign(paper_grid())
        compiled = run_campaign(paper_grid(kernel="compiled"))

        def rows(result):
            return [
                {k: v for k, v in row.items() if k != "kernel"}
                for row in result.payload()
            ]

        assert rows(event) == rows(compiled)
        assert all(compiled.agreement().values())


class TestSweep:
    def test_linear_growth(self):
        rows = ScenarioSweep(mode="linear", count=3, base=(2, 1, 2)).scenarios()
        assert [(s.set1, s.set2, s.set3) for s in rows] == [(2, 1, 2), (4, 2, 4), (6, 3, 6)]
        assert [s.number for s in rows] == [101, 102, 103]

    def test_geometric_growth(self):
        rows = ScenarioSweep(mode="geometric", count=3, base=(4, 2, 4), ratio=2.0, max_size=256).scenarios()
        assert [s.set1 for s in rows] == [4, 8, 16]

    def test_random_is_deterministic_per_seed(self):
        a = ScenarioSweep(mode="random", count=5, seed=3).scenarios()
        b = ScenarioSweep(mode="random", count=5, seed=3).scenarios()
        c = ScenarioSweep(mode="random", count=5, seed=4).scenarios()
        assert a == b
        assert a != c

    def test_random_is_bit_identical_across_platforms(self):
        """Randomized rows come from random.Random(seed), whose bit stream is
        part of the Python language contract — so these exact sizes must
        reproduce on any platform, Python version, and worker process."""
        rows = ScenarioSweep(mode="random", count=3, seed=0).scenarios()
        assert [(s.set1, s.set2, s.set3) for s in rows] == [
            (49, 53, 5), (33, 62, 51), (38, 61, 45)]

    def test_fuzzed_is_deterministic_and_covers_families(self):
        rows = ScenarioSweep(mode="fuzzed", count=10, seed=1).scenarios()
        again = ScenarioSweep(mode="fuzzed", count=10, seed=1).scenarios()
        assert rows == again
        sizes = [(s.set1, s.set2, s.set3) for s in rows]
        # One row per family per 5 steps: empty-ish, skew, burst±1, uniform,
        # saturated (the max-size row is the family fingerprint).
        assert (64, 64, 64) in sizes
        assert any(a == 0 and b == 0 for a, b, _ in sizes)

    def test_burst_rows_are_quad_aligned(self):
        for s in ScenarioSweep(mode="burst", count=4).scenarios():
            assert s.set1 % 4 == 0 and s.set3 % 4 == 0
            assert s.set2 == 1

    def test_degenerate_includes_fully_empty_row(self):
        rows = ScenarioSweep(mode="degenerate", count=6).scenarios()
        assert (rows[0].set1, rows[0].set2, rows[0].set3) == (0, 0, 0)
        assert any(s.set1 == 0 for s in rows[1:])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSweep(mode="fibonacci")

    def test_sweep_scenarios_round_trip_generate_inputs(self):
        """Sweep rows generate deterministic inputs with the declared sizes."""
        for mode in ("linear", "geometric", "random", "burst", "degenerate", "fuzzed"):
            for s in ScenarioSweep(mode=mode, count=4, seed=9).scenarios():
                first = s.generate_inputs(seed=2)
                second = s.generate_inputs(seed=2)
                assert first == second
                assert [len(part) for part in first] == [s.set1, s.set2, s.set3]


class TestScenarioEdgeCases:
    def test_scenario_5_raises_key_error(self):
        with pytest.raises(KeyError):
            scenario(5)

    def test_zero_size_scenario_generates_valid_empty_inputs(self):
        empty = Scenario(number=900, set1=0, set2=0, set3=0)
        sets = empty.generate_inputs(seed=0)
        assert sets == ([], [], [])

    @pytest.mark.parametrize("label", ["splice_plb", "splice_fcb", "simple_plb", "optimized_fcb"])
    def test_empty_sets_run_end_to_end(self, label):
        from repro.devices.interpolator import interpolate_fixed_point

        runner = build_runner(label)
        outcome = runner.run_scenario(([], [], []))
        assert outcome["result"] == interpolate_fixed_point([], [], []) & 0xFFFFFFFF
        assert outcome["cycles"] > 0


class TestRegistry:
    def test_known_labels_cover_the_paper(self):
        labels = known_labels()
        for expected in ("simple_plb", "optimized_fcb", "splice_plb", "splice_plb_dma", "splice_fcb"):
            assert expected in labels

    def test_unknown_label_rejected(self):
        with pytest.raises(KeyError):
            build_runner("vaporware_bus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_runner("splice_plb", lambda: None)


class TestExecutors:
    @pytest.fixture(scope="class")
    def grid(self):
        return paper_grid()

    @pytest.fixture(scope="class")
    def serial_result(self, grid):
        return run_campaign(grid, executor=SerialExecutor())

    def test_sharded_is_bit_identical_to_serial_on_the_paper_grid(self, grid, serial_result):
        sharded = run_campaign(grid, executor=ShardedExecutor(workers=2))
        assert sharded.payload() == serial_result.payload()

    def test_partition_preserves_cells_and_balances(self, grid):
        cells = grid.cells()
        shards = ShardedExecutor.partition(cells, 4)
        merged = sorted((c for shard in shards for c in shard), key=lambda c: c.key)
        assert merged == sorted(cells, key=lambda c: c.key)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_never_exceeds_cell_count(self, grid):
        shards = ShardedExecutor.partition(grid.cells()[:3], 8)
        assert len(shards) == 3

    def test_executor_matches_legacy_experiment_table(self, serial_result):
        from repro.evaluation.experiments import run_cycles_experiment

        assert serial_result.cycles_table() == run_cycles_experiment()

    def test_all_implementations_agree_everywhere(self, serial_result):
        assert all(serial_result.agreement().values())

    @pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs >= 4 CPUs for a meaningful speedup")
    def test_sharded_speedup_at_4_workers(self):
        import time

        spec = sweep_grid(
            ScenarioSweep(mode="geometric", count=4, base=(16, 8, 16), max_size=256),
            seeds=(0, 1),
            repeats=2,
        )  # 5 implementations x 4 scenarios x 2 seeds x 2 repeats = 80 cells
        assert spec.cell_count >= 32
        start = time.perf_counter()
        serial = run_campaign(spec, executor=SerialExecutor())
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        sharded = run_campaign(spec, executor=ShardedExecutor(workers=4))
        sharded_s = time.perf_counter() - start
        assert sharded.payload() == serial.payload()
        assert serial_s / sharded_s >= 2.0, f"speedup {serial_s / sharded_s:.2f}x"


class TestMakeExecutor:
    def test_one_means_serial(self):
        from repro.campaign import make_executor

        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(None), (SerialExecutor, ShardedExecutor))

    def test_many_means_sharded(self):
        from repro.campaign import make_executor

        executor = make_executor(3)
        assert isinstance(executor, ShardedExecutor)
        assert executor.workers == 3

    def test_zero_means_one_worker_per_cpu(self):
        from repro.campaign import make_executor

        cpus = os.cpu_count() or 1
        executor = make_executor(0)
        if cpus <= 1:
            assert isinstance(executor, SerialExecutor)
        else:
            assert isinstance(executor, ShardedExecutor)
            assert executor.workers == cpus

    def test_negative_rejected(self):
        from repro.campaign import make_executor

        with pytest.raises(ValueError):
            make_executor(-2)


class TestWorkerCrashIsolation:
    @pytest.mark.skipif(
        __import__("multiprocessing").get_start_method() != "fork",
        reason="runtime-registered runners only reach workers under fork",
    )
    def test_dead_worker_yields_error_records_not_a_crash(self, tmp_path):
        """A worker process dying mid-shard (BrokenProcessPool) retries the
        shard once on a fresh pool; if that dies too, the shard's cells get
        structured ``worker_crash`` error records and every other shard's
        outcomes survive."""
        from repro.devices.registry import _BUILDERS, register_runner

        class Exiting:
            def run_scenario(self, sets):
                os._exit(3)

        register_runner("zz_exiting", Exiting)
        try:
            spec = CampaignSpec(
                implementations=("splice_plb", "zz_exiting"),
                scenarios=SCENARIOS[:2],
                name="worker-crash",
            )
            result = run_campaign(spec, workers=2, cache=tmp_path / "cache")
            by_label = {}
            for cell in result.cells:
                by_label.setdefault(cell.cell.label, []).append(cell)
            assert all(c.error is None for c in by_label["splice_plb"])
            assert all(
                c.error is not None and "worker_crash" in c.error
                for c in by_label["zz_exiting"]
            )
            assert all(c.cycles is None for c in by_label["zz_exiting"])
            assert result.meta["cells_failed"] == 2
            # Error records are never cached: a warm rerun re-attempts them.
            warm = run_campaign(spec, workers=2, cache=tmp_path / "cache")
            assert warm.meta["cells_cached"] == 2
            assert warm.meta["cells_failed"] == 2
        finally:
            _BUILDERS.pop("zz_exiting", None)

    def test_error_rows_round_trip_through_json_and_csv(self, tmp_path):
        from repro.campaign.executor import CellError
        from repro.campaign.result import cell_result

        spec = CampaignSpec(
            implementations=("splice_plb",), scenarios=SCENARIOS[:2], name="err-rows"
        )
        cells = spec.cells()
        mixed = CampaignResult(
            spec=spec,
            cells=[
                cell_result(cells[0], (1, 2, 3)),
                cell_result(cells[1], CellError(kind="worker_crash", message="died")),
            ],
            meta={},
        )
        clone = CampaignResult.from_dict(mixed.to_dict())
        assert clone.cells[0].error is None and clone.cells[0].cycles == 2
        assert clone.cells[1].error == "worker_crash: died"
        assert clone.cells[1].cycles is None
        assert "worker_crash: died" in mixed.to_csv()
        # Errored cells drop out of the aggregates instead of poisoning them.
        assert mixed.mean_cycles() == {"splice_plb": {cells[0].scenario.number: 2.0}}


class TestCache:
    def test_warm_rerun_skips_every_cell(self, tmp_path):
        spec = CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS[:2], seeds=(0, 1))
        cold = run_campaign(spec, cache=tmp_path / "cache")
        warm = run_campaign(spec, cache=tmp_path / "cache")
        assert cold.meta["cells_cached"] == 0
        assert warm.meta["cells_cached"] == warm.meta["cells_total"] == spec.cell_count
        assert warm.cache_hit_rate == 1.0
        assert warm.payload() == cold.payload()

    def test_digest_depends_on_cell_identity(self):
        base = CampaignCell("splice_plb", SCENARIOS[0], seed=0, repeat=0)
        assert cell_digest(base) == cell_digest(base)
        assert cell_digest(base) != cell_digest(CampaignCell("splice_fcb", SCENARIOS[0], 0, 0))
        assert cell_digest(base) != cell_digest(CampaignCell("splice_plb", SCENARIOS[0], 1, 0))
        assert cell_digest(base) != cell_digest(CampaignCell("splice_plb", SCENARIOS[0], 0, 1))
        assert cell_digest(base) != cell_digest(CampaignCell("splice_plb", SCENARIOS[1], 0, 0))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = CampaignCell("splice_plb", SCENARIOS[0], 0, 0)
        cache.put(cell, (1, 2, 3))
        assert cache.get(cell) == (1, 2, 3)
        (tmp_path / f"{cell_digest(cell)}.json").write_text("not json")
        assert cache.get(cell) is None

    def test_truncated_and_malformed_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = CampaignCell("splice_plb", SCENARIOS[0], 0, 0)
        path = cache.put(cell, (1, 2, 3))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write / partial copy
        assert cache.get(cell) is None
        # Valid JSON with the wrong shape is also a miss, never a crash.
        path.write_text('{"outcome": "not-a-list"}')
        assert cache.get(cell) is None
        path.write_text('{"outcome": [1]}')
        assert cache.get(cell) is None

    def test_campaign_recovers_from_a_vandalised_cache(self, tmp_path):
        """Corrupt every entry on disk: the next run degrades to recompute,
        reproduces the cold payload bit-exactly, and heals the entries."""
        spec = CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS[:2])
        cold = run_campaign(spec, cache=tmp_path / "cache")
        for entry in (tmp_path / "cache").glob("*.json"):
            entry.write_text("\x00garbage")
        healed = run_campaign(spec, cache=tmp_path / "cache")
        assert healed.meta["cells_cached"] == 0
        assert healed.payload() == cold.payload()
        warm = run_campaign(spec, cache=tmp_path / "cache")
        assert warm.meta["cells_cached"] == spec.cell_count

    def test_cache_shared_between_serial_and_sharded(self, tmp_path):
        spec = CampaignSpec(implementations=("splice_plb", "splice_fcb"), scenarios=SCENARIOS[:2])
        cold = run_campaign(spec, workers=2, cache=tmp_path / "cache")
        warm = run_campaign(spec, workers=1, cache=tmp_path / "cache")
        assert warm.meta["cells_cached"] == spec.cell_count
        assert warm.payload() == cold.payload()


class TestResultArtifacts:
    @pytest.fixture(scope="class")
    def result(self):
        spec = CampaignSpec(implementations=("splice_plb", "splice_fcb"), scenarios=SCENARIOS[:2])
        return run_campaign(spec)

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "campaign.json"
        result.to_json(path)
        loaded = CampaignResult.from_json(path)
        assert loaded.payload() == result.payload()
        assert loaded.spec == result.spec

    def test_csv_has_one_row_per_cell(self, result):
        lines = result.to_csv().strip().splitlines()
        assert len(lines) == 1 + len(result.cells)
        assert lines[0].startswith("label,scenario,set1")

    def test_markdown_contains_grid_and_cycles_tables(self, result):
        text = result.to_markdown()
        assert "## Scenario grid" in text
        assert "## Mean bus cycles per run" in text
        assert "All implementations agree" in text

    def test_write_artifacts(self, result, tmp_path):
        paths = result.write_artifacts(tmp_path / "out")
        for path in paths.values():
            assert path.exists()
        data = json.loads(paths["json"].read_text())
        assert data["spec"]["implementations"] == ["splice_plb", "splice_fcb"]

    def test_mean_cycles_averages_over_seeds(self):
        spec = CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS[:1], seeds=(0, 1, 2))
        result = run_campaign(spec)
        per_cell = [c.cycles for c in result.cells]
        assert result.mean_cycles()["splice_plb"][1] == pytest.approx(sum(per_cell) / 3)


class TestCampaignCLI:
    def test_legacy_flat_invocation_still_generates(self, tmp_path, capsys):
        from repro.cli import main
        from repro.devices.interpolator import INTERPOLATOR_SPEC_PLB

        spec_file = tmp_path / "interp.sp"
        spec_file.write_text(INTERPOLATOR_SPEC_PLB)
        assert main([str(spec_file), "--list-only"]) == 0
        out = capsys.readouterr().out
        assert "plb_interface.vhd" in out

    def test_campaign_run_and_report(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "campaign", "run",
            "--implementations", "splice_plb", "splice_fcb",
            "--sweep", "degenerate", "--sweep-count", "3",
            "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--artifacts", str(tmp_path / "artifacts"),
        ])
        assert rc == 0
        assert (tmp_path / "artifacts" / "campaign.json").exists()
        capsys.readouterr()

        rc = main(["campaign", "report", str(tmp_path / "artifacts" / "campaign.json")])
        assert rc == 0
        assert "Mean bus cycles" in capsys.readouterr().out

        rc = main(["campaign", "report", str(tmp_path / "artifacts" / "campaign.json"),
                   "--format", "csv"])
        assert rc == 0
        assert capsys.readouterr().out.startswith("label,")

    def test_campaign_report_missing_file(self, capsys):
        from repro.cli import main

        assert main(["campaign", "report", "/nonexistent/campaign.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_legacy_option_value_named_like_a_subcommand(self, tmp_path, capsys):
        """`splice -o campaign spec.spl` must stay a generate invocation."""
        from repro.cli import main
        from repro.devices.interpolator import INTERPOLATOR_SPEC_PLB

        spec_file = tmp_path / "interp.sp"
        spec_file.write_text(INTERPOLATOR_SPEC_PLB)
        out_dir = tmp_path / "campaign"
        assert main(["-o", str(out_dir), str(spec_file)]) == 0
        capsys.readouterr()
        assert (out_dir / "interp_plb").is_dir()

    def test_paper_preset_rejects_conflicting_flags(self, capsys):
        from repro.cli import main

        rc = main(["campaign", "run", "--preset", "paper", "--sweep", "linear"])
        assert rc == 2
        assert "--preset paper" in capsys.readouterr().err


class TestIncrementalCachePersistence:
    def test_outcomes_persist_even_when_a_later_cell_fails(self, tmp_path):
        """An interrupted run keeps the cells it finished."""
        from repro.campaign.runner import run_campaign
        from repro.devices.registry import _BUILDERS, register_runner

        class Exploding:
            def run_scenario(self, sets):
                raise RuntimeError("boom")

        register_runner("zz_exploding", Exploding)
        try:
            spec = CampaignSpec(
                implementations=("splice_plb", "zz_exploding"),
                scenarios=SCENARIOS[:2],
                name="interrupted",
            )
            cache = ResultCache(tmp_path / "cache")
            with pytest.raises(RuntimeError):
                run_campaign(spec, cache=cache)
            # splice_plb sorts before zz_exploding, so its cells completed
            # and were persisted before the failure.
            assert len(cache) == 2
            survivor = CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS[:2])
            warm = run_campaign(survivor, cache=cache)
            assert warm.cache_hit_rate == 1.0
        finally:
            _BUILDERS.pop("zz_exploding", None)

    @pytest.mark.skipif(
        __import__("multiprocessing").get_start_method() != "fork",
        reason="runtime-registered runners only reach workers under fork",
    )
    def test_failing_shard_does_not_discard_completed_shards(self, tmp_path):
        from repro.campaign.runner import run_campaign
        from repro.devices.registry import _BUILDERS, register_runner

        class Exploding:
            def run_scenario(self, sets):
                raise RuntimeError("boom")

        register_runner("zz_exploding", Exploding)
        try:
            spec = CampaignSpec(
                implementations=("splice_plb", "zz_exploding"),
                scenarios=SCENARIOS[:2],
                name="shard-failure",
            )
            cache = ResultCache(tmp_path / "cache")
            with pytest.raises(RuntimeError):
                run_campaign(spec, workers=2, cache=cache)
            # The splice_plb shard completed; its outcomes must have been
            # persisted even though the zz_exploding shard blew up.
            assert len(cache) == 2
        finally:
            _BUILDERS.pop("zz_exploding", None)


class TestProfileCLI:
    def test_profile_registry_label(self, capsys):
        from repro.cli import main

        rc = main(["profile", "splice_plb", "--kernel", "compiled",
                   "--repeat", "2", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Profile of splice_plb scenario 2" in out
        assert "cumulative" in out
        assert "bus cycles" in out

    def test_profile_spec_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.devices.interpolator import INTERPOLATOR_SPEC_PLB

        spec_file = tmp_path / "interp.sp"
        spec_file.write_text(INTERPOLATOR_SPEC_PLB)
        rc = main(["profile", str(spec_file), "--cycles", "500", "--top", "5",
                   "--sort", "tottime"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "500 bus cycles" in out
        assert "tottime" in out

    def test_profile_unknown_target(self, capsys):
        from repro.cli import main

        assert main(["profile", "not-a-label-or-file"]) == 2
        assert "neither a registered implementation label" in capsys.readouterr().err

    def test_profile_unknown_scenario(self, capsys):
        from repro.cli import main

        assert main(["profile", "splice_plb", "--scenario", "99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
