"""Crash recovery: the durable job journal and shard-checkpoint resume.

The contract under test is the PR's acceptance criterion: kill -9 the
``splice serve`` process mid-job, restart it on the same ``--state-dir``,
and every non-terminal job is re-enqueued at its original priority and
resumed from its last completed shard — completed campaign cells answered
from the shared result cache (never re-executed), completed fuzz sessions
restored from the journal — with final results bit-identical to an
uninterrupted run.

Three layers of tests:

* journal unit semantics (append/replay/compaction, torn-tail tolerance),
* atomic cache writes under concurrent writers (the property recovery's
  zero-re-execution guarantee leans on),
* whole-process recovery: in-process farm restarts, and real ``SIGKILL`` of
  a ``splice serve`` subprocess mid-campaign and mid-fuzz-job.
"""

import json
import multiprocessing
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, ScenarioSweep, run_campaign, sweep_grid
from repro.campaign.cache import ResultCache, cell_digest
from repro.evaluation.scenarios import SCENARIOS
from repro.service import (
    DONE,
    JOURNAL_FILENAME,
    JobJournal,
    ServiceClient,
    SimulationFarm,
    replay_journal,
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="runtime-registered runners only reach workers under fork",
)


def small_spec(count=2, name="rec-small", seed=0):
    return sweep_grid(
        ScenarioSweep(mode="degenerate", count=count),
        implementations=("splice_plb",),
        seeds=(seed,),
        name=name,
    )


# ---------------------------------------------------------------------------
# Journal unit semantics
# ---------------------------------------------------------------------------


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path / JOURNAL_FILENAME)
        journal.append("submitted", job="j000001", kind="campaign", priority=3,
                       timeout_s=None, spec={"implementations": ["x"]},
                       idempotency_key="k1")
        journal.append("shard_dispatched", job="j000001", shard=0, worker=0,
                       attempt=1)
        journal.append("shard_done", job="j000001", shard=0, cells=["d1", "d2"])
        journal.append("submitted", job="j000002", kind="fuzz", priority=0,
                       timeout_s=5.0, fuzz={"seed_start": 9, "sessions": 2,
                                            "budget": 4},
                       idempotency_key=None)
        journal.append("shard_done", job="j000002", shard=0, seed=9,
                       session={"seed": 9, "executed": 4})
        journal.append("finished", job="j000001", state="done")
        journal.close()

        replay = replay_journal(journal.path)
        assert replay.skipped == 0
        assert replay.seq == 2
        assert set(replay.jobs) == {"j000001", "j000002"}
        assert not replay.jobs["j000001"].live
        assert replay.jobs["j000001"].terminal == "done"
        fuzz = replay.jobs["j000002"]
        assert fuzz.live
        assert fuzz.kind == "fuzz"
        assert fuzz.timeout_s == 5.0
        assert fuzz.sessions == {9: {"seed": 9, "executed": 4}}
        assert replay.jobs["j000001"].idempotency_key == "k1"
        assert [j.job_id for j in replay.live_jobs()] == ["j000002"]

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        journal = JobJournal(path)
        journal.append("submitted", job="j000001", kind="campaign", priority=0,
                       timeout_s=None, spec={"implementations": ["x"]})
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"type": "shard_done", "job": "j000001", "cel')  # torn
        replay = replay_journal(path)
        assert replay.skipped == 1
        assert replay.jobs["j000001"].live

    def test_missing_journal_is_an_empty_replay(self, tmp_path):
        replay = replay_journal(tmp_path / "nope.jsonl")
        assert replay.jobs == {}
        assert replay.seq == 0

    def test_compaction_keeps_live_jobs_and_fuzz_sessions_only(self, tmp_path):
        journal = JobJournal(tmp_path / JOURNAL_FILENAME)
        journal.append("submitted", job="j000001", kind="campaign", priority=0,
                       timeout_s=None, spec={"implementations": ["x"]})
        journal.append("shard_done", job="j000001", shard=0, cells=["d1"])
        journal.append("finished", job="j000001", state="done")
        journal.append("submitted", job="j000002", kind="fuzz", priority=1,
                       timeout_s=None, fuzz={"seed_start": 0, "sessions": 2,
                                             "budget": 4})
        journal.append("shard_done", job="j000002", shard=0, seed=0,
                       session={"seed": 0, "executed": 4})
        journal.append("shard_dispatched", job="j000002", shard=1, worker=0,
                       attempt=1)

        replay = replay_journal(journal.path)
        journal.compact(replay.compaction_records())
        journal.close()

        lines = [json.loads(line)
                 for line in journal.path.read_text().splitlines()]
        types = [record["type"] for record in lines]
        # Header + the live fuzz job's submission + its durable session;
        # the finished campaign job and the dispatch record are gone.
        assert types == ["journal", "submitted", "shard_done"]
        assert lines[0]["seq"] == 2
        assert lines[1]["job"] == "j000002"
        # The compacted journal replays to the same live state.
        again = replay_journal(journal.path)
        assert again.seq == 2
        assert [j.job_id for j in again.live_jobs()] == ["j000002"]
        assert again.jobs["j000002"].sessions[0]["executed"] == 4

    def test_ids_never_reused_after_compaction(self, tmp_path):
        """The compaction header pins the sequence even when every job is
        terminal — a restart must not hand out a job id a client of the
        previous incarnation might still be polling."""
        journal = JobJournal(tmp_path / JOURNAL_FILENAME)
        journal.append("submitted", job="j000007", kind="campaign", priority=0,
                       timeout_s=None, spec={"implementations": ["x"]})
        journal.append("finished", job="j000007", state="done")
        replay = replay_journal(journal.path)
        journal.compact(replay.compaction_records())
        journal.close()
        assert replay_journal(journal.path).seq == 7


# ---------------------------------------------------------------------------
# Atomic cache writes under concurrency
# ---------------------------------------------------------------------------


class TestAtomicCacheWrites:
    def test_concurrent_writers_never_publish_a_torn_entry(self, tmp_path):
        """Many threads hammering the same cell digest while readers poll:
        every observed file state is complete, valid JSON with the right
        outcome.  (Temp names are per-writer-unique, so the only shared
        step is the atomic rename.)"""
        cache = ResultCache(tmp_path / "cache")
        spec = small_spec(name="atomic")
        cell = spec.cells()[0]
        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                cache.put(cell, (1, 2, 3))

        def reader():
            digest = cell_digest(cell)
            path = cache.directory / f"{digest}.json"
            while not stop.is_set():
                if path.exists():
                    try:
                        data = json.loads(path.read_text())
                        if data["outcome"] != [1, 2, 3]:
                            torn.append(data)
                    except ValueError as exc:
                        torn.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert torn == []
        assert cache.get(cell) == (1, 2, 3)
        # No temp litter left behind for the entry glob to trip on.
        assert list(cache.directory.glob(".*.tmp")) == []


# ---------------------------------------------------------------------------
# In-process farm restarts (stop mid-job, recover on the same state dir)
# ---------------------------------------------------------------------------


class _SlowRunner:
    def run_scenario(self, sets):
        time.sleep(0.12)
        return {"result": 1, "cycles": 1, "transactions": 0}


def _register(label, builder):
    from repro.devices.registry import register_runner

    register_runner(label, builder, replace=True)


def _unregister(label):
    from repro.devices.registry import _BUILDERS

    _BUILDERS.pop(label, None)


class TestInProcessRecovery:
    @fork_only
    def test_campaign_resumes_from_cache_with_zero_reexecution(self, tmp_path):
        _register("zz_slowrec", _SlowRunner)
        try:
            spec = CampaignSpec(
                implementations=("zz_slowrec",), scenarios=SCENARIOS[:4],
                name="midstop",
            )
            farm = SimulationFarm(workers=1, shard_size=1,
                                  state_dir=tmp_path / "state").start()
            try:
                job = farm.submit(spec, priority=4)
                with farm.lock:
                    while len(job.fresh) < 2:
                        farm.lock.wait(1.0)
            finally:
                farm.stop()  # hard stop mid-job; deliberately not journaled

            farm2 = SimulationFarm(workers=1, shard_size=1,
                                   state_dir=tmp_path / "state").start()
            try:
                recovered = farm2.get(job.id)
                assert recovered is not None
                assert recovered.recovered
                assert recovered.priority == 4
                cached = len(recovered.cached)
                assert cached >= 2  # completed cells answered from the cache
                assert farm2.counters["jobs_recovered"] == 1
                assert recovered.wait(timeout=60) == DONE
                # Zero re-execution: only the not-yet-cached cells ran.
                assert farm2.counters["cells_executed"] == (
                    len(recovered.cells) - cached
                )
                diff = recovered.result().diff(run_campaign(spec))
                assert diff is None, diff
            finally:
                farm2.stop()
        finally:
            _unregister("zz_slowrec")

    def test_fuzz_job_resumes_from_journaled_sessions(self, tmp_path):
        pytest.importorskip("hypothesis")
        from repro.fuzz.session import run_session

        farm = SimulationFarm(workers=1,
                              state_dir=tmp_path / "state").start()
        try:
            job = farm.submit_fuzz({"seed_start": 20, "sessions": 3,
                                    "budget": 4})
            with farm.lock:
                while not job.fresh:
                    farm.lock.wait(1.0)
        finally:
            farm.stop()

        done_before = len(job.fresh)
        farm2 = SimulationFarm(workers=1,
                               state_dir=tmp_path / "state").start()
        try:
            recovered = farm2.get(job.id)
            assert recovered is not None and recovered.recovered
            assert len(recovered.fresh) >= done_before >= 1
            assert farm2.counters["sessions_recovered"] >= done_before
            assert recovered.wait(timeout=300) == DONE
            payload = recovered.fuzz_result()
        finally:
            farm2.stop()

        expected = []
        for seed in (20, 21, 22):
            report = run_session(4, seed, profile="quick", corpus_dir=None)
            expected.append({
                "seed": seed,
                "budget": report.budget,
                "profile": report.profile,
                "with_faults": report.with_faults,
                "executed": report.executed,
                "rounds": report.rounds,
                "coverage": list(report.coverage),
                "counterexamples": [ce.describe()
                                    for ce in report.counterexamples],
                "exit_code": report.exit_code,
            })
        assert payload["sessions"] == expected  # bit-identical resume

    def test_terminal_jobs_are_not_recovered_and_ids_advance(self, tmp_path):
        spec = small_spec(name="terminal")
        farm = SimulationFarm(workers=1, state_dir=tmp_path / "state").start()
        try:
            job = farm.submit(spec)
            assert job.wait(timeout=60) == DONE
        finally:
            farm.stop()
        farm2 = SimulationFarm(workers=1, state_dir=tmp_path / "state").start()
        try:
            assert farm2.get(job.id) is None
            assert farm2.counters["jobs_recovered"] == 0
            # The sequence continues past the compacted job's id...
            next_job = farm2.submit(small_spec(name="next", seed=1))
            assert next_job.id > job.id
            # ...and the first job's cells are a pure cache hit.
            again = farm2.submit(spec)
            assert again.wait(timeout=60) == DONE
            assert len(again.cached) == len(again.cells)
        finally:
            farm2.stop()

    def test_idempotency_keys_survive_restart(self, tmp_path):
        """A client retrying a POST after a server crash must get its
        original (journaled, recovered) job back, not a duplicate."""
        pytest.importorskip("hypothesis")
        farm = SimulationFarm(workers=1, state_dir=tmp_path / "state").start()
        try:
            job = farm.submit_fuzz(
                {"seed_start": 0, "sessions": 2, "budget": 3},
                idempotency_key="retry-me",
            )
        finally:
            farm.stop()
        farm2 = SimulationFarm(workers=1, state_dir=tmp_path / "state").start()
        try:
            again = farm2.submit_fuzz(
                {"seed_start": 0, "sessions": 2, "budget": 3},
                idempotency_key="retry-me",
            )
            assert again.id == job.id
            assert again.recovered
        finally:
            farm2.stop()


# ---------------------------------------------------------------------------
# SIGKILL of a real `splice serve` subprocess
# ---------------------------------------------------------------------------


_BANNER = re.compile(r"serving on http://([0-9.]+):(\d+)")


def _start_serve(state_dir, extra=()):
    """Start `splice serve` on an ephemeral port; returns (proc, client)."""
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
         "serve", "--port", "0", "--workers", "1",
         "--state-dir", str(state_dir), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 60
    for line in proc.stdout:
        match = _BANNER.search(line)
        if match:
            return proc, ServiceClient(f"http://{match.group(1)}:{match.group(2)}")
        if time.monotonic() > deadline:
            break
    proc.kill()
    raise RuntimeError("serve subprocess never printed its banner")


def _stop_serve(proc):
    if proc.poll() is None:
        proc.kill()
    proc.stdout.close()
    proc.wait(timeout=30)


class TestServeKillRecovery:
    def test_sigkill_mid_campaign_recovers_bit_identical(self, tmp_path):
        """The acceptance criterion, end to end: SIGKILL the server after
        the first cell completes, restart on the same --state-dir, and the
        job finishes with a payload bit-identical to the batch runner —
        with every already-cached cell served from the cache."""
        state = tmp_path / "state"
        spec = small_spec(count=10, name="kill-campaign")
        total = len(spec.cells())
        proc, client = _start_serve(state)
        try:
            snap = client.submit(spec, priority=2)
            for event in client.events(snap["id"]):
                if event.get("event") == "cell":
                    os.kill(proc.pid, signal.SIGKILL)
                    break
        except (ConnectionError, OSError):
            pass  # the stream died with the server; expected
        finally:
            _stop_serve(proc)

        # The journal survived the kill and holds the live job.
        replay = replay_journal(state / JOURNAL_FILENAME)
        assert [j.job_id for j in replay.live_jobs()] == [snap["id"]]

        proc2, client2 = _start_serve(state)
        try:
            status = client2.status(snap["id"])  # same id after restart
            assert status["recovered"] is True
            assert status["priority"] == 2
            final = client2.wait(snap["id"], timeout=300)
            assert final["state"] == "done"
            result = client2.result(snap["id"])
            cached = result["meta"]["cells_cached"]
            assert cached >= 1  # at least the pre-kill cell came from cache
            stats = client2.stats()
            # Zero re-execution of cached shards in the second incarnation.
            assert stats["cells"]["cells_executed"] == total - cached
            assert stats["cells"]["jobs_recovered"] == 1
        finally:
            _stop_serve(proc2)

        assert result["cells"] == run_campaign(spec).to_dict()["cells"]

    def test_sigkill_mid_fuzz_job_resumes_completed_sessions(self, tmp_path):
        pytest.importorskip("hypothesis")
        from repro.fuzz.session import run_session

        state = tmp_path / "state"
        proc, client = _start_serve(state)
        try:
            snap = client.submit_fuzz(seed_start=30, sessions=3, budget=4)
            for event in client.events(snap["id"]):
                if event.get("event") == "session":
                    os.kill(proc.pid, signal.SIGKILL)
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            _stop_serve(proc)

        replay = replay_journal(state / JOURNAL_FILENAME)
        (live,) = replay.live_jobs()
        assert live.job_id == snap["id"]
        done_before = len(live.sessions)
        assert done_before >= 1  # the journaled session survived the kill

        proc2, client2 = _start_serve(state)
        try:
            final = client2.wait(snap["id"], timeout=600)
            assert final["state"] == "done"
            assert final["recovered"] is True
            result = client2.result(snap["id"])
            stats = client2.stats()
            assert stats["cells"]["sessions_recovered"] >= done_before
            assert stats["cells"]["sessions_executed"] <= 3 - done_before
        finally:
            _stop_serve(proc2)

        expected = []
        for seed in (30, 31, 32):
            report = run_session(4, seed, profile="quick", corpus_dir=None)
            expected.append({
                "seed": seed,
                "budget": report.budget,
                "profile": report.profile,
                "with_faults": report.with_faults,
                "executed": report.executed,
                "rounds": report.rounds,
                "coverage": list(report.coverage),
                "counterexamples": [ce.describe()
                                    for ce in report.counterexamples],
                "exit_code": report.exit_code,
            })
        assert result["sessions"] == expected  # bit-identical to uninterrupted
