"""Tests for the SIS protocol machinery and the Chapter 7 extension API."""

import pytest

from repro.core.api.plugin import BusAdapterPlugin, PluginRegistry, load_plugin
from repro.core.capabilities import BusCapabilities
from repro.core.drivers.macro_lib import SoftwareMacroLibrary
from repro.core.engine import Splice
from repro.core.syntax.errors import SplicePluginError
from repro.rtl import Simulator
from repro.sis import (
    SIGNAL_DESCRIPTIONS,
    ProtocolVariant,
    SISBundle,
    SISProtocolMonitor,
    variant_for_bus,
)


class TestSISBundle:
    def test_figure_4_2_signal_set(self):
        assert set(SIGNAL_DESCRIPTIONS) == {
            "CLK", "RST", "DATA_IN", "DATA_IN_VALID", "IO_ENABLE", "FUNC_ID",
            "DATA_OUT", "DATA_OUT_VALID", "IO_DONE", "CALC_DONE",
        }

    def test_bundle_signal_widths(self):
        bundle = SISBundle(data_width=32, func_id_width=3)
        assert bundle.data_in.width == 32
        assert bundle.func_id.width == 3
        assert bundle.calc_done.width == 7
        assert len(bundle.signals()) == 9  # CLK is implicit

    def test_function_ports_track_ids(self):
        bundle = SISBundle(data_width=32, func_id_width=4)
        port = bundle.new_function_port("f", 5)
        assert port.func_id == 5 and port.data_out.width == 32


class TestProtocolMonitor:
    def _monitored(self):
        sim = Simulator()
        bundle = SISBundle(data_width=32, func_id_width=3)
        sim.add_signals(bundle.signals())
        monitor = SISProtocolMonitor(bundle).attach(sim)
        return sim, bundle, monitor

    def test_variant_selection(self):
        assert variant_for_bus(True) is ProtocolVariant.PSEUDO_ASYNCHRONOUS
        assert variant_for_bus(False) is ProtocolVariant.STRICTLY_SYNCHRONOUS

    def test_clean_when_idle(self):
        sim, _, monitor = self._monitored()
        sim.step(10)
        assert monitor.clean
        assert "no violations" in monitor.report()

    def test_write_to_status_register_flagged(self):
        sim, bundle, monitor = self._monitored()
        bundle.io_enable.next = 1
        bundle.data_in_valid.next = 1
        bundle.func_id.next = 0
        sim.step(2)
        assert not monitor.clean
        assert any(v.rule == "status_register_write" for v in monitor.violations)

    def test_data_instability_flagged(self):
        sim, bundle, monitor = self._monitored()
        bundle.data_in_valid.next = 1
        bundle.data_in.next = 0x11
        bundle.func_id.next = 2
        sim.step(2)
        bundle.data_in.next = 0x22  # changes while still waiting for IO_DONE
        sim.step(2)
        assert any(v.rule == "data_in_stability" for v in monitor.violations)


def _toy_plugin(name="ahb"):
    capabilities = BusCapabilities(name=name, widths=(32, 64), supports_dma=True,
                                   supports_burst=True, max_dma_bytes=1024,
                                   dma_setup_transactions=2)

    class AHBMacros(SoftwareMacroLibrary):
        pass

    library = AHBMacros()
    library.name = name
    library.supports_dma = True
    library.max_burst_words = 4
    return BusAdapterPlugin(
        name=name,
        capabilities=capabilities,
        macro_library=library,
        template="-- %COMP_NAME% AHB adapter\n%AHB_HANDSHAKE%\n",
        markers={"AHB_HANDSHAKE": "-- burst-capable AHB handshake process"},
    )


class TestPluginRegistry:
    def test_register_and_lookup(self):
        registry = PluginRegistry()
        plugin = registry.register(_toy_plugin())
        assert "ahb" in registry
        assert registry.get("AHB") is plugin
        assert registry.capabilities()["ahb"].supports_dma

    def test_duplicate_registration_rejected(self):
        registry = PluginRegistry()
        registry.register(_toy_plugin())
        with pytest.raises(SplicePluginError):
            registry.register(_toy_plugin())
        registry.register(_toy_plugin(), replace=True)

    def test_name_mismatch_rejected(self):
        capabilities = BusCapabilities(name="other")
        with pytest.raises(SplicePluginError):
            BusAdapterPlugin(name="ahb", capabilities=capabilities,
                             macro_library=SoftwareMacroLibrary())

    def test_library_file_name_convention(self):
        assert _toy_plugin().library_file_name == "libahb_interface.so"

    def test_load_plugin_from_module_like_object(self):
        class FakeModule:
            SPLICE_PLUGIN = _toy_plugin()

        assert load_plugin(FakeModule).name == "ahb"
        with pytest.raises(SplicePluginError):
            load_plugin(object())


class TestEngineWithPlugin:
    def test_generate_for_plugin_bus(self):
        engine = Splice()
        engine.register_plugin(_toy_plugin())
        assert "ahb" in engine.supported_buses
        result = engine.generate(
            "%device_name accel\n%bus_type ahb\n%bus_width 64\n%base_address 0x90000000\n"
            "int mac(int a, int b);\n"
        )
        interface = result.hardware_files["ahb_interface.vhd"]
        assert "AHB handshake" in interface
        assert "accel" in interface

    def test_parameter_checker_hook_runs(self):
        rejected = []

        def checker(module, capabilities):
            rejected.append(module.mod_name)
            raise SplicePluginError("this bus refuses every design")

        plugin = _toy_plugin()
        plugin.parameter_checker = checker
        engine = Splice()
        engine.register_plugin(plugin)
        with pytest.raises(SplicePluginError):
            engine.generate(
                "%device_name x\n%bus_type ahb\n%bus_width 32\n%base_address 0x90000000\n"
                "int f(int a);\n"
            )
        assert rejected == ["x"]
