"""Tests for the wire format, macro libraries, C generation, and bus models."""

import pytest
from hypothesis import given, strategies as st

from repro.buses import (
    BusTransaction,
    FCBMaster,
    FCBSlaveBundle,
    PLBMaster,
    PLBSlaveBundle,
    SystemMemory,
    TransactionKind,
    create_bus,
)
from repro.core.drivers.cgen import generate_driver_sources
from repro.core.drivers.macro_lib import (
    APBMacroLibrary,
    FCBMacroLibrary,
    OPBMacroLibrary,
    PLBMacroLibrary,
    macro_library_for,
)
from repro.core.drivers.wire_format import beat_count, deserialize_io, serialize_io
from repro.core.params import IOParams, build_params
from repro.core.syntax.errors import SpliceGenerationError
from repro.core.syntax.parser import parse_spec
from repro.core.syntax.validation import validate_spec
from repro.rtl import Simulator


def _module(spec_text):
    spec = parse_spec(spec_text)
    bus = validate_spec(spec)
    return build_params(spec, bus)


TIMER_MODULE = _module(
    "%device_name hw_timer\n%bus_type plb\n%bus_width 32\n%base_address 0x80004000\n"
    "%user_type llong, unsigned long long, 64\n"
    "void set_threshold(llong thold);\nllong get_threshold();\n"
)


class TestWireFormat:
    def test_scalar_split_round_trip(self):
        io = IOParams("x", "llong", 64, 1)
        words = serialize_io(io, 0x1122334455667788, 32, 1)
        assert words == [0x55667788, 0x11223344]
        assert deserialize_io(io, words, 32, 1) == 0x1122334455667788

    def test_packed_round_trip(self):
        io = IOParams("x", "char*", 8, 8, is_pointer=True, is_packed=True)
        values = [1, 2, 3, 4, 5, 6, 7, 8]
        words = serialize_io(io, values, 32, 8)
        assert len(words) == 2
        assert deserialize_io(io, words, 32, 8) == values

    def test_packed_partial_beat(self):
        io = IOParams("x", "char*", 8, 5, is_pointer=True, is_packed=True)
        values = [9, 8, 7, 6, 5]
        words = serialize_io(io, values, 32, 5)
        assert len(words) == 2
        assert deserialize_io(io, words, 32, 5) == values

    def test_array_of_wide_elements(self):
        io = IOParams("x", "double*", 64, 3, is_pointer=True)
        values = [0xAABBCCDDEEFF0011, 0x1, 0xFFFFFFFFFFFFFFFF]
        words = serialize_io(io, values, 32, 3)
        assert len(words) == 6
        assert deserialize_io(io, words, 32, 3) == values

    def test_too_few_elements_rejected(self):
        io = IOParams("x", "int*", 32, 4, is_pointer=True)
        with pytest.raises(ValueError):
            serialize_io(io, [1, 2], 32, 4)

    def test_beat_count_matches_serialization(self):
        io = IOParams("x", "short*", 16, 6, is_pointer=True, is_packed=True)
        assert beat_count(io, 32, 6) == len(serialize_io(io, [1] * 6, 32, 6))

    @given(
        values=st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=16),
    )
    def test_int_array_round_trip_property(self, values):
        io = IOParams("x", "int*", 32, len(values), is_pointer=True)
        words = serialize_io(io, values, 32, len(values))
        assert deserialize_io(io, words, 32, len(values)) == values

    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_scalar_round_trip_property(self, value):
        io = IOParams("x", "llong", 64, 1)
        assert deserialize_io(io, serialize_io(io, value, 32, 1), 32, 1) == value


class TestMacroLibraries:
    def test_library_lookup(self):
        assert isinstance(macro_library_for("plb"), PLBMacroLibrary)
        assert isinstance(macro_library_for("fcb"), FCBMacroLibrary)
        with pytest.raises(SpliceGenerationError):
            macro_library_for("wishbone")

    def test_plb_set_address_is_memory_mapped(self):
        lib = PLBMacroLibrary()
        assert lib.set_address(TIMER_MODULE, 2) == 0x80004000 + 8

    def test_fcb_set_address_is_function_id(self):
        lib = FCBMacroLibrary()
        assert lib.set_address(TIMER_MODULE, 2) == 2

    def test_plb_expands_bursts_into_singles(self):
        lib = PLBMacroLibrary()
        txns = lib.write_transactions(TIMER_MODULE, 1, [1, 2, 3, 4], use_burst=True)
        assert all(t.kind is TransactionKind.WRITE for t in txns)
        assert len(txns) == 4

    def test_fcb_uses_real_bursts(self):
        lib = FCBMacroLibrary()
        txns = lib.write_transactions(TIMER_MODULE, 1, list(range(6)), use_burst=True)
        assert txns[0].kind is TransactionKind.BURST_WRITE and len(txns[0].data) == 4
        assert len(txns) == 2

    def test_dma_only_on_supporting_bus(self):
        with pytest.raises(SpliceGenerationError):
            OPBMacroLibrary().write_transactions(TIMER_MODULE, 1, [1], use_dma=True)
        txn = PLBMacroLibrary().write_transactions(TIMER_MODULE, 1, [1, 2], use_dma=True)[0]
        assert txn.kind is TransactionKind.DMA_WRITE

    def test_apb_requires_polling_and_c_macros_reflect_it(self):
        lib = APBMacroLibrary()
        assert lib.requires_polling
        macros = lib.c_macro_definitions()
        assert "CALC_DONE" in macros["WAIT_FOR_RESULTS(id)"]

    def test_c_macros_cover_required_set(self):
        macros = PLBMacroLibrary().c_macro_definitions()
        for required in ("WRITE_SINGLE", "WRITE_DOUBLE", "WRITE_QUAD", "READ_SINGLE",
                         "SET_ADDRESS", "WAIT_FOR_RESULTS"):
            assert any(key.startswith(required) for key in macros)


class TestCGen:
    def test_driver_c_structure(self):
        sources = generate_driver_sources(TIMER_MODULE)
        driver = sources["hw_timer_driver.c"]
        assert "#define SET_THRESHOLD_ID" in driver
        assert "WAIT_FOR_RESULTS" in driver
        assert "WRITE_DOUBLE" in driver or "WRITE_SINGLE" in driver
        header = sources["hw_timer_driver.h"]
        assert "set_threshold" in header and "get_threshold" in header

    def test_multi_instance_driver_takes_inst_index(self):
        module = _module(
            "%device_name multi\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n"
            "int f(int x):4;\n"
        )
        driver = generate_driver_sources(module)["multi_driver.c"]
        assert "int inst_index" in driver
        assert "F_ID + inst_index" in driver

    def test_splice_lib_carries_base_address(self):
        lib_h = generate_driver_sources(TIMER_MODULE)["splice_lib.h"]
        assert "0x80004000" in lib_h.upper() or "0X80004000" in lib_h.upper()


class TestBusTransactions:
    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            BusTransaction(TransactionKind.WRITE, 0)

    def test_latency_is_none_until_complete(self):
        txn = BusTransaction(TransactionKind.READ, 0)
        assert txn.latency is None
        with pytest.raises(ValueError):
            _ = txn.result


class TestMemory:
    def test_read_write_blocks(self):
        memory = SystemMemory()
        memory.write_block(0x100, [1, 2, 3])
        assert memory.read_block(0x100, 3) == [1, 2, 3]
        assert memory.read_word(0x200) == 0

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            SystemMemory().read_word(0x101)


class _EchoSlave:
    """A minimal PLB slave that acks immediately and echoes address as data."""

    def __init__(self, plb):
        self.plb = plb
        self.stored = {}

    def tick(self):
        plb = self.plb
        plb.wr_ack.next = 0
        plb.rd_ack.next = 0
        if plb.wr_req.value and plb.wr_ce.value:
            self.stored[plb.selected_slot(True)] = plb.data_to_slave.value
            plb.wr_ack.next = 1
        elif plb.rd_req.value and plb.rd_ce.value:
            plb.data_from_slave.next = self.stored.get(plb.selected_slot(False), 0xDEAD)
            plb.rd_ack.next = 1


class TestPLBMaster:
    def _system(self):
        sim = Simulator()
        plb = PLBSlaveBundle("plb", num_slots=8)
        master = PLBMaster("master", plb, base_address=0x1000)
        slave = _EchoSlave(plb)
        sim.register_module(master)
        sim.add_signals(plb.signals())
        sim.add_clocked(slave.tick)
        sim.reset()
        return sim, master, slave

    def test_write_then_read_round_trip(self):
        sim, master, slave = self._system()
        write = master.submit(BusTransaction(TransactionKind.WRITE, 0x1008, data=[0xCAFE]))
        sim.run_until(lambda: write.done)
        assert slave.stored[2] == 0xCAFE
        read = master.submit(BusTransaction(TransactionKind.READ, 0x1008))
        sim.run_until(lambda: read.done)
        assert read.result == 0xCAFE
        assert read.latency > 0

    def test_out_of_range_address_rejected(self):
        sim, master, _ = self._system()
        master.submit(BusTransaction(TransactionKind.WRITE, 0x9000, data=[1]))
        with pytest.raises(ValueError):
            sim.step(10)

    def test_dma_write_pays_setup_cost(self):
        sim, master, slave = self._system()
        single = master.submit(BusTransaction(TransactionKind.WRITE, 0x1000, data=[1]))
        sim.run_until(lambda: single.done)
        single_latency = single.latency
        dma = master.submit(BusTransaction(TransactionKind.DMA_WRITE, 0x1000, data=[1]))
        sim.run_until(lambda: dma.done)
        assert dma.latency > single_latency  # setup transactions dominate one word

    def test_utilization_tracks_busy_cycles(self):
        sim, master, _ = self._system()
        txn = master.submit(BusTransaction(TransactionKind.WRITE, 0x1000, data=[1]))
        sim.run_until(lambda: txn.done)
        sim.step(20)
        assert 0.0 < master.utilization() < 1.0


class TestCreateBus:
    def test_known_buses(self):
        for name in ("plb", "opb", "fcb", "apb"):
            bundle, master = create_bus(name, data_width=32, func_id_width=3, base_address=0x0)
            assert bundle.data_width == 32
            assert master.slave is bundle

    def test_unknown_bus_rejected(self):
        with pytest.raises(KeyError):
            create_bus("wishbone", data_width=32, func_id_width=3)
