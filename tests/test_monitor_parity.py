"""Monitor parity: each SIS violation rule fires identically on all kernels.

The compiled kernel *fuses* the :class:`~repro.sis.protocol.SISProtocolMonitor`
checks into its generated step loop (event-gated, state in locals) instead of
calling ``sample()`` every cycle.  These tests deliberately trigger each of
the five violation rules by driving a bare SIS bundle from a scripted
stimulus process, run the identical stimulus on the reference, event and
compiled kernels, and assert the resulting :class:`ProtocolViolation`
sequences — cycle, rule and detail text — are element-for-element identical,
proving the fused path is observationally indistinguishable from the
per-cycle Python path.
"""

import pytest

from repro.rtl import CompiledSimulator, ReferenceSimulator, Simulator
from repro.sis import ProtocolVariant, SISBundle, SISProtocolMonitor

KERNELS = (
    ("reference", ReferenceSimulator),
    ("event", Simulator),
    ("compiled", CompiledSimulator),
)

RULES = (
    "io_enable_strobe",
    "status_register_write",
    "data_in_stability",
    "func_id_stability",
    "read_handshake",
)

#: Stimulus schedules: cycle -> {signal name: next value}.  Driven by one
#: clocked process (no sensitivity declaration, so it runs on every kernel
#: every cycle) against an otherwise bare SIS bundle.
STIMULI = {
    "io_enable_strobe": {
        1: {"io_enable": 1},
        # held high for three more cycles without a new request
        5: {"io_enable": 0},
    },
    "status_register_write": {
        1: {"io_enable": 1, "data_in_valid": 1, "func_id": 0, "data_in": 0xAB},
        2: {"io_enable": 0, "data_in_valid": 0},
    },
    "data_in_stability": {
        1: {"data_in_valid": 1, "data_in": 0x11, "func_id": 2},
        3: {"data_in": 0x22},  # payload glitches while awaiting IO_DONE
        5: {"data_in_valid": 0},
    },
    "func_id_stability": {
        1: {"data_in_valid": 1, "data_in": 0x33, "func_id": 2},
        3: {"func_id": 3},  # target glitches while awaiting IO_DONE
        5: {"data_in_valid": 0},
    },
    "read_handshake": {
        1: {"data_out_valid": 1},  # no IO_DONE alongside it
        3: {"data_out_valid": 0},
    },
    "clean_transfer": {
        1: {"data_in_valid": 1, "data_in": 0x44, "func_id": 1, "io_enable": 1},
        2: {"io_enable": 0},
        3: {"io_done": 1},
        4: {"io_done": 0, "data_in_valid": 0},
    },
}


def _run(factory, schedule, variant, cycles=12):
    sim = factory()
    bundle = SISBundle(data_width=32, func_id_width=3)
    sim.add_signals(bundle.signals())
    monitor = SISProtocolMonitor(bundle, variant=variant).attach(sim)

    def stimulus():
        changes = schedule.get(sim.cycle)
        if changes:
            for name, value in changes.items():
                getattr(bundle, name).next = value

    sim.add_clocked(stimulus)
    sim.step(cycles)
    return sim, [(v.cycle, v.rule, v.detail) for v in monitor.violations]


@pytest.mark.parametrize("variant", list(ProtocolVariant))
@pytest.mark.parametrize("scenario", sorted(STIMULI))
def test_violations_identical_across_kernels(scenario, variant):
    schedule = STIMULI[scenario]
    results = {}
    for label, factory in KERNELS:
        sim, violations = _run(factory, schedule, variant)
        results[label] = violations
        if label == "compiled":
            # The monitor really was fused into the generated loop (and the
            # violations were produced by the inline path, not a callback).
            assert sim.design.fused_monitors == 1
            assert "io_enable_strobe" in sim.design.source
    assert results["reference"] == results["event"] == results["compiled"], results


@pytest.mark.parametrize("rule", RULES)
def test_each_rule_fires_on_every_kernel(rule):
    """Each of the five rules is actually triggered by its stimulus."""
    variant = ProtocolVariant.PSEUDO_ASYNCHRONOUS
    for label, factory in KERNELS:
        _, violations = _run(factory, STIMULI[rule], variant)
        assert any(v[1] == rule for v in violations), (label, rule, violations)


def test_clean_transfer_stays_clean():
    for label, factory in KERNELS:
        _, violations = _run(
            factory, STIMULI["clean_transfer"], ProtocolVariant.PSEUDO_ASYNCHRONOUS
        )
        assert violations == [], (label, violations)


def test_strictly_synchronous_variant_skips_handshake_rules():
    """The strict variant has no stability/handshake axioms to violate."""
    for label, factory in KERNELS:
        _, violations = _run(
            factory,
            STIMULI["data_in_stability"],
            ProtocolVariant.STRICTLY_SYNCHRONOUS,
        )
        assert all(v[1] in ("io_enable_strobe", "status_register_write") for v in violations), (
            label,
            violations,
        )
