"""Unit and property tests for the Splice syntax front-end (Chapter 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.syntax import (
    BoundKind,
    SpliceSyntaxError,
    SpliceValidationError,
    TypeTable,
    parse_declaration,
    parse_directive,
    parse_spec,
    validate_spec,
)
from repro.core.syntax.directives import DirectiveProcessor
from repro.core.syntax.lexer import tokenize, TokenKind


MINIMAL_TARGET = "%device_name dev\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n"


class TestLexer:
    def test_tokenizes_declaration(self):
        kinds = [t.kind for t in tokenize("int f(char* x:4+);")]
        assert TokenKind.STAR in kinds and TokenKind.PLUS in kinds and kinds[-1] is TokenKind.END

    def test_rejects_garbage(self):
        with pytest.raises(SpliceSyntaxError):
            tokenize("int f(@);")

    def test_braces_act_as_parentheses(self):
        kinds = [t.kind for t in tokenize("void f{};")]
        assert TokenKind.LPAREN in kinds and TokenKind.RPAREN in kinds


class TestDeclarationParser:
    def test_basic_prototype(self):
        decl = parse_declaration("long get_status();")
        assert decl.name == "get_status"
        assert decl.return_type.width == 32
        assert decl.params == []
        assert decl.blocking

    def test_scalar_parameters(self):
        decl = parse_declaration("int add(int a, short b, char c);")
        assert [p.ctype.width for p in decl.params] == [32, 16, 8]

    def test_explicit_pointer(self):
        decl = parse_declaration("void f(int*:5 x);")
        param = decl.params[0]
        assert param.is_pointer and param.bound.kind is BoundKind.EXPLICIT and param.bound.count == 5

    def test_implicit_pointer(self):
        decl = parse_declaration("void f(char x, int*:x y);")
        assert decl.params[1].bound.kind is BoundKind.IMPLICIT
        assert decl.params[1].bound.index == "x"

    def test_packed_and_dma_extensions(self):
        decl = parse_declaration("void f(char*:16^+ x);")
        param = decl.params[0]
        assert param.packed and param.dma and param.bound.count == 16

    def test_bound_after_name_accepted(self):
        decl = parse_declaration("void f(char* x:8+);")
        assert decl.params[0].bound.count == 8 and decl.params[0].packed

    def test_multiple_instances(self):
        decl = parse_declaration("void f(int x, int y):4;")
        assert decl.instances == 4

    def test_nowait(self):
        decl = parse_declaration("nowait f(int x, int y);")
        assert not decl.blocking and not decl.has_output

    def test_multi_word_types(self):
        decl = parse_declaration("unsigned long long widen(unsigned long x);")
        assert decl.return_type.width == 64
        assert decl.params[0].ctype.width == 32

    def test_user_type(self):
        types = TypeTable()
        types.define_user_type("llong", "unsigned long long", 64)
        decl = parse_declaration("llong get_threshold();", types)
        assert decl.return_type.width == 64

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(SpliceSyntaxError):
            parse_declaration("void f(int x, int x);")

    def test_void_parameter_rejected(self):
        with pytest.raises(SpliceSyntaxError):
            parse_declaration("void f(void x);")

    def test_extension_without_pointer_rejected(self):
        with pytest.raises(SpliceSyntaxError):
            parse_declaration("void f(int:4 x);")

    def test_missing_name_rejected(self):
        with pytest.raises(SpliceSyntaxError):
            parse_declaration("void f(int);")

    def test_zero_instances_rejected(self):
        with pytest.raises(SpliceSyntaxError):
            parse_declaration("void f(int x):0;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SpliceSyntaxError):
            parse_declaration("void f(int x); junk")

    def test_describe_round_trips_through_parser(self):
        original = parse_declaration("void f(char n, int*:n data+, short*:4^ blob):2;")
        # describe() may normalise ordering but must re-parse to the same AST
        # (after registering no extra types).
        text = original.describe()
        reparsed_error = None
        try:
            reparsed = parse_declaration(text)
        except SpliceSyntaxError as exc:  # pragma: no cover - diagnostic aid
            reparsed_error = exc
        assert reparsed_error is None
        assert reparsed.instances == original.instances
        assert [p.name for p in reparsed.params] == [p.name for p in original.params]


class TestDirectives:
    def test_canonical_and_spaced_spellings(self):
        assert parse_directive("%bus_type plb").keyword == "bus_type"
        assert parse_directive("% bus type plb").keyword == "bus_type"
        assert parse_directive("% name hw_timer").keyword == "device_name"
        assert parse_directive("% hdl type vhdl").keyword == "target_hdl"

    def test_unknown_directive_rejected(self):
        with pytest.raises(SpliceSyntaxError):
            parse_directive("%frobnicate yes")

    def test_boolean_parsing(self):
        proc = DirectiveProcessor()
        proc.apply_line("%dma_support true")
        assert proc.target.dma_support is True
        with pytest.raises(SpliceSyntaxError):
            proc.apply_line("%burst_support maybe")

    def test_base_address_requires_hex(self):
        proc = DirectiveProcessor()
        with pytest.raises(SpliceSyntaxError):
            proc.apply_line("%base_address 1234")

    def test_duplicate_directive_rejected(self):
        proc = DirectiveProcessor()
        proc.apply_line("%bus_width 32", 1)
        with pytest.raises(SpliceValidationError):
            proc.apply_line("%bus_width 64", 2)

    def test_user_type_requires_three_fields(self):
        proc = DirectiveProcessor()
        with pytest.raises(SpliceSyntaxError):
            proc.apply_line("%user_type llong, unsigned long long")

    def test_user_type_registers_type(self):
        proc = DirectiveProcessor()
        proc.apply_line("%user_type uint48, unsigned long long, 48")
        assert proc.types.lookup("uint48").width == 48

    def test_user_type_cannot_shadow_builtin(self):
        proc = DirectiveProcessor()
        with pytest.raises(SpliceValidationError):
            proc.apply_line("%user_type int, unsigned, 32")

    def test_invalid_hdl_rejected(self):
        proc = DirectiveProcessor()
        with pytest.raises(SpliceValidationError):
            proc.apply_line("%target_hdl systemverilog")


class TestSpecParser:
    def test_full_spec_with_comments(self):
        spec = parse_spec(MINIMAL_TARGET + "// a comment\nint f(int x); // inline\n")
        assert len(spec.declarations) == 1
        assert spec.target.bus_type == "plb"

    def test_multiline_declaration(self):
        spec = parse_spec(MINIMAL_TARGET + "int f(int a,\n int b);\n")
        assert len(spec.declarations[0].params) == 2

    def test_duplicate_function_names_rejected(self):
        with pytest.raises(SpliceSyntaxError):
            parse_spec(MINIMAL_TARGET + "void f(int x);\nvoid f(int y);\n")

    def test_error_reports_line_number(self):
        with pytest.raises(SpliceSyntaxError) as excinfo:
            parse_spec(MINIMAL_TARGET + "\nint @bad(int x);\n")
        assert "line" in str(excinfo.value)


class TestValidation:
    def _spec(self, body, target=MINIMAL_TARGET):
        return parse_spec(target + body)

    def test_valid_spec_returns_capabilities(self):
        bus = validate_spec(self._spec("int f(int x);\n"))
        assert bus.name == "plb"

    def test_missing_bus_type(self):
        spec = parse_spec("%device_name d\n%bus_width 32\nint f(int x);\n")
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_missing_device_name(self):
        spec = parse_spec("%bus_type plb\n%bus_width 32\n%base_address 0x80000000\nint f(int x);\n")
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_unknown_bus(self):
        spec = parse_spec("%device_name d\n%bus_type wishbone\n%bus_width 32\nint f(int x);\n")
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_unsupported_width(self):
        spec = parse_spec("%device_name d\n%bus_type fcb\n%bus_width 64\nint f(int x);\n")
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_memory_mapped_bus_requires_base_address(self):
        spec = parse_spec("%device_name d\n%bus_type plb\n%bus_width 32\nint f(int x);\n")
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_fcb_does_not_require_base_address(self):
        spec = parse_spec("%device_name d\n%bus_type fcb\n%bus_width 32\nint f(int x);\n")
        assert validate_spec(spec).name == "fcb"

    def test_unaligned_base_address(self):
        spec = parse_spec(
            "%device_name d\n%bus_type plb\n%bus_width 32\n%base_address 0x80000002\nint f(int x);\n"
        )
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_pointer_without_bound_rejected(self):
        with pytest.raises(SpliceValidationError):
            validate_spec(self._spec("void f(int* x);\n"))

    def test_dma_without_directive_rejected(self):
        with pytest.raises(SpliceValidationError):
            validate_spec(self._spec("void f(int*:8^ x);\n"))

    def test_dma_on_unsupported_bus_rejected(self):
        spec = parse_spec(
            "%device_name d\n%bus_type fcb\n%bus_width 32\n%dma_support true\nvoid f(int*:8^ x);\n"
        )
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_dma_allowed_when_enabled_on_plb(self):
        spec = self._spec("void f(int*:8^ x);\n", MINIMAL_TARGET + "%dma_support true\n")
        assert validate_spec(spec).supports_dma

    def test_burst_on_unsupported_bus_rejected(self):
        spec = parse_spec(
            "%device_name d\n%bus_type opb\n%bus_width 32\n%base_address 0x80000000\n"
            "%burst_support true\nvoid f(int x);\n"
        )
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_implicit_bound_must_reference_earlier_param(self):
        with pytest.raises(SpliceValidationError):
            validate_spec(self._spec("void f(int*:x y, int x);\n"))

    def test_implicit_bound_must_reference_scalar(self):
        with pytest.raises(SpliceValidationError):
            validate_spec(self._spec("void f(int*:4 x, int*:x y);\n"))

    def test_implicit_bound_must_be_integer(self):
        with pytest.raises(SpliceValidationError):
            validate_spec(self._spec("void f(float x, int*:x y);\n"))

    def test_packing_wider_than_bus_rejected(self):
        spec = self._spec("void f(double*:4+ x);\n")
        with pytest.raises(SpliceValidationError):
            validate_spec(spec)

    def test_empty_spec_rejected(self):
        with pytest.raises(SpliceValidationError):
            validate_spec(parse_spec(MINIMAL_TARGET))


# -- property-based tests -----------------------------------------------------------

_identifier = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s not in {"int", "char", "void", "short", "long", "float", "double",
                        "single", "bool", "unsigned", "signed", "nowait"}
)


@given(name=_identifier, count=st.integers(min_value=1, max_value=64))
def test_explicit_pointer_bound_round_trip(name, count):
    decl = parse_declaration(f"void f(int*:{count} {name});")
    assert decl.params[0].bound.count == count
    assert decl.params[0].name == name


@given(
    names=st.lists(_identifier, min_size=1, max_size=5, unique=True),
    instances=st.integers(min_value=1, max_value=8),
)
def test_parameter_order_is_preserved(names, instances):
    params = ", ".join(f"int {n}" for n in names)
    decl = parse_declaration(f"void f({params}):{instances};")
    assert [p.name for p in decl.params] == names
    assert decl.instances == instances
