"""Unit tests for the RTL simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl import (
    FSM,
    CompiledSimulator,
    Module,
    ReferenceSimulator,
    Signal,
    SimulationError,
    Simulator,
    SimulatorStats,
    TraceRecorder,
)
from repro.rtl.signal import mask_for_width, truncate

#: The scan-based kernels; used where run-always comb semantics matter.
BOTH_KERNELS = pytest.mark.parametrize(
    "kernel", [Simulator, ReferenceSimulator], ids=["event", "reference"]
)

#: All three kernels must satisfy the shared behavioural contracts.
ALL_KERNELS = pytest.mark.parametrize(
    "kernel",
    [Simulator, ReferenceSimulator, CompiledSimulator],
    ids=["event", "reference", "compiled"],
)


class TestSignal:
    def test_reset_value_and_width_masking(self):
        sig = Signal("s", width=4, reset=0x1F)
        assert sig.value == 0xF  # masked to 4 bits

    def test_two_phase_update(self):
        sig = Signal("s", width=8)
        sig.next = 0xAB
        assert sig.value == 0
        assert sig.commit() is True
        assert sig.value == 0xAB

    def test_commit_without_pending_is_noop(self):
        sig = Signal("s", width=8, reset=3)
        assert sig.commit() is False
        assert sig.value == 3

    def test_drive_reports_change(self):
        sig = Signal("s", width=8)
        assert sig.drive(5) is True
        assert sig.drive(5) is False

    def test_bit_and_bits_accessors(self):
        sig = Signal("s", width=8, reset=0b1011_0010)
        assert sig.bit(1) == 1
        assert sig.bit(0) == 0
        assert sig.bits(7, 4) == 0b1011

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            Signal("s", width=4).bit(4)

    def test_bool_and_int_conversions(self):
        assert not Signal("s", width=1)
        assert int(Signal("s", width=8, reset=7)) == 7

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Signal("s", width=0)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0))
    def test_truncate_always_fits(self, width, value):
        assert truncate(value, width) <= mask_for_width(width)


class TestSimulator:
    def test_clocked_process_advances_state(self):
        sim = Simulator()
        counter = sim.signal("count", width=8)
        sim.add_clocked(lambda: setattr(counter, "next", counter.value + 1))
        sim.step(5)
        assert counter.value == 5
        assert sim.cycle == 5

    def test_comb_settles_chain(self):
        sim = Simulator()
        a = sim.signal("a", width=8)
        b = sim.signal("b", width=8)
        c = sim.signal("c", width=8)
        sim.add_comb(lambda: b.drive(a.value + 1))
        sim.add_comb(lambda: c.drive(b.value + 1))
        sim.add_clocked(lambda: setattr(a, "next", 10))
        sim.step()
        assert (b.value, c.value) == (11, 12)

    @ALL_KERNELS
    def test_comb_loop_detection(self, kernel):
        # The scan kernels hit the settle iteration limit; the compiled
        # kernel rejects the undeclared run-always process at compile time.
        # Either way a SimulationError fires before the loop can spin.
        sim = kernel(max_settle_iterations=8)
        a = sim.signal("a", width=8)
        sim.add_comb(lambda: a.drive(a.value + 1))
        with pytest.raises(SimulationError):
            sim.step()

    @ALL_KERNELS
    def test_mutually_driving_comb_processes_raise(self, kernel):
        """Two comb processes driving each other's inputs form a loop."""
        sim = kernel(max_settle_iterations=16)
        a = sim.signal("a", width=8)
        b = sim.signal("b", width=8)
        sim.add_comb(lambda: a.drive(b.value + 1), sensitive_to=[b], drives=[a])
        sim.add_comb(lambda: b.drive(a.value + 1), sensitive_to=[a], drives=[b])
        with pytest.raises(SimulationError):
            sim.step()

    @BOTH_KERNELS
    def test_max_settle_iterations_is_honored(self, kernel):
        """A loop survives exactly ``max_settle_iterations`` passes, no more."""
        runs = []
        sim = kernel(max_settle_iterations=5)
        a = sim.signal("a", width=16)
        sim.add_comb(lambda: (runs.append(a.value), a.drive(a.value + 1)), sensitive_to=[a])
        with pytest.raises(SimulationError, match="5 iterations"):
            sim.step()
        assert len(runs) == 5

    @ALL_KERNELS
    def test_value_scheduled_before_registration_still_commits(self, kernel):
        """A ``next`` set before add_signal() binds the observer is not lost."""
        sig = Signal("s", width=8)
        sig.next = 5
        sim = kernel()
        sim.add_signal(sig)
        sim.step()
        assert sig.value == 5
        sig.next = 9
        sim.step()
        assert sig.value == 9

    def test_run_until_times_out(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, timeout=10)

    def test_run_until_returns_elapsed_cycles(self):
        sim = Simulator()
        flag = sim.signal("flag")
        sim.add_clocked(lambda: setattr(flag, "next", 1 if sim.cycle >= 3 else 0))
        elapsed = sim.run_until(lambda: flag.value == 1)
        assert elapsed >= 3

    @ALL_KERNELS
    def test_run_until_checks_condition_before_stepping(self, kernel):
        """An already-true condition returns 0 cycles even with timeout=0."""
        sim = kernel()
        sim.signal("unused")
        assert sim.run_until(lambda: True, timeout=0) == 0
        assert sim.cycle == 0
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, timeout=0)

    @ALL_KERNELS
    def test_reset_restores_signals_and_cycle(self, kernel):
        sim = kernel()
        counter = sim.signal("count", width=8, reset=2)
        sim.add_clocked(lambda: setattr(counter, "next", counter.value + 1))
        sim.step(3)
        sim.reset()
        assert counter.value == 2
        assert sim.cycle == 0

    @ALL_KERNELS
    def test_reset_clears_stats_and_resettles_comb_outputs(self, kernel):
        sim = kernel()
        src = sim.signal("src", width=8, reset=3)
        derived = sim.signal("derived", width=8)
        sim.add_comb(lambda: derived.drive(src.value * 2), sensitive_to=[src], drives=[derived])
        sim.add_clocked(lambda: setattr(src, "next", src.value + 1))
        sim.step(5)
        assert sim.stats.cycles == 5
        sim.reset()
        # Stats are cleared, and the comb output is consistent with the reset
        # values before any step() runs (the reset->settle contract).
        assert sim.stats.as_dict() == SimulatorStats().as_dict()
        assert derived.value == 6

    @ALL_KERNELS
    def test_reset_settles_safely_without_comb_processes(self, kernel):
        """reset() with no comb processes leaves reset values committed."""
        sim = kernel()
        counter = sim.signal("count", width=8, reset=7)
        sim.add_clocked(lambda: setattr(counter, "next", counter.value + 1))
        samples = []
        sim.add_monitor(lambda: samples.append(counter.value))
        sim.step(2)
        sim.reset()
        assert counter.value == 7
        assert sim.stats.cycles == 0
        # Monitors never run during reset itself.
        assert samples == [8, 9]

    def test_event_kernel_skips_settle_on_quiet_cycles(self):
        sim = Simulator()
        pulse = sim.signal("pulse")
        out = sim.signal("out", width=8)
        sim.add_clocked(
            lambda: setattr(pulse, "next", 1 - pulse.value) if sim.cycle % 10 == 0 else None
        )
        sim.add_comb(lambda: out.drive(0xF0 if pulse.value else 0x0F), sensitive_to=[pulse])
        sim.step(30)
        assert sim.stats.fast_path_cycles > 20
        assert sim.stats.comb_activations < 30

    def test_sensitivity_limits_activations(self):
        sim = Simulator()
        hot = sim.signal("hot", width=8)
        cold = sim.signal("cold", width=8)
        hot_out = sim.signal("hot_out", width=8)
        cold_out = sim.signal("cold_out", width=8)
        activations = {"hot": 0, "cold": 0}

        def hot_proc():
            activations["hot"] += 1
            hot_out.drive(hot.value + 1)

        def cold_proc():
            activations["cold"] += 1
            cold_out.drive(cold.value + 1)

        sim.add_comb(hot_proc, sensitive_to=[hot])
        sim.add_comb(cold_proc, sensitive_to=[cold])
        sim.add_clocked(lambda: setattr(hot, "next", hot.value + 1))
        sim.step(10)
        # ``cold`` never changes after the initial settle, so its process
        # only ran when registration marked everything dirty.
        assert activations["hot"] >= 10
        assert activations["cold"] <= 2
        assert cold_out.value == 1

    def test_reference_kernel_ignores_sensitivity_lists(self):
        sim = ReferenceSimulator()
        a = sim.signal("a", width=8)
        b = sim.signal("b", width=8)
        sim.add_comb(lambda: b.drive(a.value + 1), sensitive_to=[a])
        sim.add_clocked(lambda: setattr(a, "next", 5))
        sim.step()
        assert b.value == 6
        assert sim.stats.fast_path_cycles == 0

    def test_stats_report_renders_counters(self):
        sim = Simulator()
        sim.signal("s")
        sim.step(3)
        text = sim.stats.report()
        assert "cycles" in text and "fast_path_cycles" in text
        assert sim.stats.as_dict()["cycles"] == 3


class TestModule:
    def test_signal_namespacing_and_duplicates(self):
        mod = Module("m")
        sig = mod.signal("x", width=4)
        assert sig.name == "m.x"
        with pytest.raises(ValueError):
            mod.signal("x")

    def test_attach_registers_children_recursively(self):
        parent = Module("p")
        child = Module("c")
        child.signal("y")
        parent.submodule(child)
        ticks = []
        child.clocked(lambda: ticks.append(1))
        sim = Simulator()
        sim.register_module(parent)
        sim.step(2)
        assert len(ticks) == 2
        assert any(s.name == "c.y" for s in parent.iter_signals())


class TestFSM:
    def test_transitions(self):
        fsm = FSM("f", ["A", "B", "C"])
        sim = Simulator()
        sim.add_signals(fsm.signals())
        assert fsm.state == "A"
        fsm.request("C")
        sim.step(0)
        for sig in fsm.signals():
            sig.commit()
        assert fsm.state == "C"
        assert fsm.is_in("C")

    def test_unknown_state_rejected(self):
        fsm = FSM("f", ["A"])
        with pytest.raises(KeyError):
            fsm.encode("Z")

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            FSM("f", ["A", "A"])

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            FSM("f", [])


class TestTrace:
    def test_recorder_samples_every_cycle(self):
        sim = Simulator()
        counter = sim.signal("count", width=8)
        sim.add_clocked(lambda: setattr(counter, "next", counter.value + 1))
        recorder = TraceRecorder(sim, [counter])
        sim.step(4)
        assert len(recorder.trace) == 4
        assert recorder.trace.values("count") == [1, 2, 3, 4]

    def test_edges_and_count_high(self):
        sim = Simulator()
        strobe = sim.signal("strobe")
        sim.add_clocked(lambda: setattr(strobe, "next", 1 if sim.cycle % 2 == 0 else 0))
        recorder = TraceRecorder(sim, [strobe])
        sim.step(6)
        trace = recorder.trace
        assert trace.count_high("strobe") > 0
        assert all(trace.values("strobe")[c] for c in trace.edges("strobe"))

    def test_unknown_signal_rejected(self):
        sim = Simulator()
        recorder = TraceRecorder(sim, [sim.signal("a")])
        sim.step(1)
        with pytest.raises(KeyError):
            recorder.trace.values("missing")

    def test_render_contains_signal_names(self):
        sim = Simulator()
        sig = sim.signal("visible", width=8)
        recorder = TraceRecorder(sim, [sig])
        sim.step(2)
        assert "visible" in recorder.trace.render()
