"""Tests for the simulation farm service: job queue, farm, HTTP API, CLI.

The farm's contract is that serving a campaign through the queue + warm
workers + shared cache is *observably identical* to ``splice campaign run``:
same cells, same payload bytes, same aggregation.  The tests here pin that,
plus the queueing semantics the batch path does not have: priority ordering,
FIFO fairness, cancellation at shard boundaries, per-job timeouts, the
cache short-circuit, and worker-crash fault isolation.
"""

import multiprocessing
import time

import pytest

from repro.campaign import CampaignSpec, ScenarioSweep, paper_grid, run_campaign, sweep_grid
from repro.evaluation.scenarios import SCENARIOS
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    TIMEOUT,
    Job,
    JobQueue,
    ServiceClient,
    ServiceError,
    Shard,
    SimulationFarm,
    resolve_workers,
    serve_farm_in_thread,
)

#: Runtime-registered runners (the slow/crashing stand-ins below) only reach
#: worker processes when the OS forks them from the registering parent.
fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="runtime-registered runners only reach workers under fork",
)


def small_spec(count=2, name="svc-small", seed=0):
    """A cheap single-implementation grid (degenerate scenarios simulate fast)."""
    return sweep_grid(
        ScenarioSweep(mode="degenerate", count=count),
        implementations=("splice_plb",),
        seeds=(seed,),
        name=name,
    )


class _SlowRunner:
    """Holds a worker busy for a deterministic, nontrivial interval."""

    def run_scenario(self, sets):
        time.sleep(0.15)
        return {"result": 1, "cycles": 1, "transactions": 0}


class _ExitingRunner:
    """Kills the whole worker process mid-shard (not an exception)."""

    def run_scenario(self, sets):
        import os

        os._exit(3)


def _register(label, builder):
    from repro.devices.registry import register_runner

    register_runner(label, builder, replace=True)


def _unregister(label):
    from repro.devices.registry import _BUILDERS

    _BUILDERS.pop(label, None)


# ---------------------------------------------------------------------------
# JobQueue unit semantics (no processes involved)
# ---------------------------------------------------------------------------


class TestJobQueue:
    def _job(self, job_id, priority=0):
        job = Job(job_id, small_spec(name=f"q-{job_id}"), priority=priority)
        job.pending_shards.append(Shard(job_id, 0, []))
        return job

    def test_higher_priority_pops_first(self):
        queue = JobQueue()
        low, high = self._job("low", priority=0), self._job("high", priority=5)
        queue.push(low)
        queue.push(high)
        assert queue.pop() is high
        assert queue.pop() is low
        assert queue.pop() is None

    def test_fifo_within_a_priority(self):
        queue = JobQueue()
        jobs = [self._job(f"j{i}") for i in range(4)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop() for _ in jobs] == jobs

    def test_repush_keeps_the_original_queue_position(self):
        """A job re-pushed while it still has pending shards must not lose
        its FIFO slot to a later submission of the same priority."""
        queue = JobQueue()
        first, second = self._job("first"), self._job("second")
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        queue.push(first)  # still has pending shards: goes back in
        assert queue.pop() is first
        assert queue.pop() is second

    def test_terminal_jobs_are_skipped_lazily(self):
        queue = JobQueue()
        cancelled, live = self._job("dead"), self._job("live")
        queue.push(cancelled)
        queue.push(live)
        cancelled.state = CANCELLED  # cancel() just flips state; heap untouched
        assert queue.pop() is live
        assert queue.pop() is None

    def test_jobs_without_pending_shards_are_skipped(self):
        queue = JobQueue()
        drained = self._job("drained")
        drained.pending_shards.clear()
        queue.push(drained)
        assert len(queue) == 0
        assert queue.peek() is None
        assert queue.pop() is None

    def test_len_counts_distinct_dispatchable_jobs(self):
        queue = JobQueue()
        job = self._job("dup")
        queue.push(job)
        queue.push(job)  # re-push duplicates the heap entry, not the job
        assert len(queue) == 1


class TestResolveWorkers:
    def test_zero_means_one_per_cpu(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


# ---------------------------------------------------------------------------
# Farm behaviour (real worker processes)
# ---------------------------------------------------------------------------


class TestFarm:
    def test_farm_result_is_bit_identical_to_batch_on_the_paper_grid(self):
        grid = paper_grid()
        batch = run_campaign(grid)
        with SimulationFarm(workers=2) as farm:
            job = farm.submit(grid)
            assert job.wait(timeout=120) == DONE
            assert job.result().payload() == batch.payload()

    def test_repeat_submission_short_circuits_without_touching_workers(self):
        spec = small_spec(name="svc-cachehit")
        with SimulationFarm(workers=1) as farm:
            first = farm.submit(spec)
            assert first.wait(timeout=60) == DONE
            executed_before = farm.counters["cells_executed"]

            second = farm.submit(spec)
            # Fully cached: terminal at submit time, no queueing, no worker.
            assert second.state == DONE
            assert len(second.cached) == spec.cell_count
            assert len(second.fresh) == 0
            assert farm.counters["cells_executed"] == executed_before
            stats = farm.stats()
            assert stats["cache_hit_rate"] == 0.5  # 0/N then N/N
            assert stats["queue_depth"] == 0

    def test_submit_requires_a_running_farm(self):
        farm = SimulationFarm(workers=1)
        with pytest.raises(RuntimeError):
            farm.submit(small_spec())

    @fork_only
    def test_priority_cancel_and_timeout_semantics(self):
        """One slow worker, deterministic queueing behind it.

        While the worker grinds through a slow job's first shard, everything
        submitted after it is provably queued — so priority overtaking,
        queued-cancellation and queued-timeout can be asserted exactly.
        """
        _register("zz_slow", _SlowRunner)
        try:
            slow_spec = CampaignSpec(
                implementations=("zz_slow",), scenarios=SCENARIOS[:3], name="slow"
            )
            with SimulationFarm(workers=1, shard_size=1) as farm:
                slow = farm.submit(slow_spec)  # 3 shards x 0.15s
                low = farm.submit(small_spec(name="low"), priority=0)
                high = farm.submit(small_spec(name="high", seed=1), priority=5)
                doomed = farm.submit(small_spec(name="doomed", seed=2), priority=0)
                expiring = farm.submit(
                    small_spec(name="expiring", seed=3), timeout_s=0.05
                )

                # Queued cancellation: drops instantly, never runs a cell.
                assert farm.cancel(doomed.id) is True
                assert doomed.state == CANCELLED
                assert farm.cancel(doomed.id) is False  # already terminal

                assert expiring.wait(timeout=30) == TIMEOUT
                with pytest.raises(ValueError):
                    expiring.result()  # holes in the grid: no result exists

                assert high.wait(timeout=60) == DONE
                assert low.wait(timeout=60) == DONE
                assert slow.wait(timeout=60) == DONE
                # Priority 5 overtook the earlier-submitted priority 0.
                assert high.finished < low.finished
                assert doomed.fresh == {} and doomed.cells_done == 0
        finally:
            _unregister("zz_slow")

    @fork_only
    def test_cancelling_a_running_job_stops_at_the_shard_boundary(self):
        _register("zz_slow", _SlowRunner)
        try:
            slow_spec = CampaignSpec(
                implementations=("zz_slow",), scenarios=SCENARIOS[:4], name="slow-cancel"
            )
            with SimulationFarm(workers=1, shard_size=1) as farm:
                job = farm.submit(slow_spec)
                with farm.lock:
                    while not job.in_flight:
                        farm.lock.wait(1.0)
                assert farm.cancel(job.id) is True
                assert job.state == CANCELLED
                # The in-flight shard runs to its boundary in the worker and
                # its late results are discarded, after which the farm is
                # fully available again for new jobs.
                follow_up = farm.submit(small_spec(name="after-cancel"))
                assert follow_up.wait(timeout=60) == DONE
                assert job.cells_done < len(job.cells)
        finally:
            _unregister("zz_slow")

    @fork_only
    def test_dead_worker_is_respawned_and_the_job_fails_structurally(self):
        """A worker killed mid-shard (twice) must not take the farm down:
        the shard is retried once on a fresh worker, then its cells get
        structured error records and the farm keeps serving."""
        _register("zz_exit", _ExitingRunner)
        try:
            crash_spec = CampaignSpec(
                implementations=("zz_exit",), scenarios=SCENARIOS[:1], name="crash"
            )
            with SimulationFarm(workers=1, shard_size=1) as farm:
                job = farm.submit(crash_spec)
                assert job.wait(timeout=60) == FAILED
                assert len(job.errors) == 1
                (error,) = job.errors.values()
                assert error.kind == "worker_crash"
                assert farm.counters["workers_respawned"] >= 2
                assert farm.counters["shards_retried"] == 1

                result = job.result()
                (cell,) = result.cells
                assert cell.error is not None and "worker_crash" in cell.error
                assert cell.cycles is None

                # The respawned worker serves the next job normally.
                follow_up = farm.submit(small_spec(name="after-crash"))
                assert follow_up.wait(timeout=60) == DONE
        finally:
            _unregister("zz_exit")


# ---------------------------------------------------------------------------
# HTTP API + client
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def served_farm():
    with SimulationFarm(workers=2, name="test-farm") as farm:
        server, _thread = serve_farm_in_thread(farm)
        try:
            yield farm, ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
        finally:
            server.shutdown()
            server.server_close()


class TestHTTPAPI:
    def test_submit_stream_and_result_match_the_batch_runner(self, served_farm):
        farm, client = served_farm
        spec = small_spec(count=3, name="http-flow")
        job = client.submit(spec, priority=2)
        assert job["state"] in (QUEUED, "running", DONE)
        assert job["cells_total"] == 3
        assert job["priority"] == 2

        events = list(client.events(job["id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "state" and events[-1]["state"] == DONE
        cell_events = [e for e in events if e["event"] == "cell"]
        assert len(cell_events) == 3
        assert all(e["label"] == "splice_plb" for e in cell_events)

        served = client.result(job["id"])
        batch = run_campaign(spec)
        assert served["cells"] == batch.payload()
        assert served["meta"]["executor"] == "farm"

    def test_event_stream_supports_resume_offsets(self, served_farm):
        farm, client = served_farm
        job = client.submit(small_spec(name="http-offset", seed=11))
        client.wait(job["id"], timeout=60)
        all_events = list(client.events(job["id"]))
        tail = list(client.events(job["id"], start=len(all_events) - 1))
        assert tail == all_events[-1:]

    def test_status_jobs_stats_and_health(self, served_farm):
        farm, client = served_farm
        assert client.healthz() == {"ok": True, "running": True}
        stats = client.stats()
        assert stats["worker_count"] == 2
        assert stats["shard_size"] == farm.shard_size
        assert {"cells_total", "cells_cached", "cells_executed"} <= set(stats["cells"])
        job = client.submit(small_spec(name="http-status", seed=12))
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == DONE
        assert final["cells_done"] == final["cells_total"]
        assert any(j["id"] == job["id"] for j in client.jobs())

    def test_delete_cancels_and_error_codes_are_specific(self, served_farm):
        farm, client = served_farm
        # 404: unknown endpoints and unknown jobs.
        for path in ("status", "result", "cancel"):
            with pytest.raises(ServiceError) as excinfo:
                getattr(client, path)("j999999")
            assert excinfo.value.status == 404
        # 400: bodies that are not campaign specs.
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"bogus": 1})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"implementations": ["no_such_label"]})
        assert excinfo.value.status == 400
        # Cancel flow: done jobs cannot be cancelled; cancelled jobs have no
        # result (410, distinct from 409 = still running).
        job = client.submit(small_spec(name="http-del", seed=13))
        client.wait(job["id"], timeout=60)
        assert client.cancel(job["id"])["cancelled"] is False
        assert client.result(job["id"])["meta"]["executor"] == "farm"

    def test_warm_resubmission_over_http_is_fully_cached(self, served_farm):
        farm, client = served_farm
        spec = small_spec(name="http-warm", seed=14)
        cold = client.submit_and_wait(spec, timeout=60)
        warm = client.submit_and_wait(spec, timeout=60)
        assert cold["state"] == warm["state"] == DONE
        assert warm["cells_cached"] == warm["cells_total"]
        assert warm["cells_executed"] == 0


# ---------------------------------------------------------------------------
# CLI integration (the `submit` front end is a pure HTTP client)
# ---------------------------------------------------------------------------


class TestCLI:
    def test_workers_arg_spellings(self):
        import argparse

        from repro.cli import _workers_arg

        assert _workers_arg("auto") == 0
        assert _workers_arg("0") == 0
        assert _workers_arg("3") == 3
        with pytest.raises(argparse.ArgumentTypeError):
            _workers_arg("-2")
        with pytest.raises(argparse.ArgumentTypeError):
            _workers_arg("many")

    def test_submit_round_trip_against_a_live_farm(self, served_farm, capsys):
        from repro.cli import main

        farm, client = served_farm
        url = f"http://{client.host}:{client.port}"
        code = main([
            "submit", "--url", url, "--implementations", "splice_plb",
            "--sweep", "degenerate", "--sweep-count", "2", "--seeds", "21",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Submitted job" in out
        assert "# Campaign report" in out

    def test_submit_no_follow_prints_the_handle_only(self, served_farm, capsys):
        from repro.cli import main

        farm, client = served_farm
        url = f"http://{client.host}:{client.port}"
        code = main([
            "submit", "--url", url, "--no-follow", "--implementations",
            "splice_plb", "--sweep", "degenerate", "--sweep-count", "2",
            "--seeds", "22",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "follow with" in out

    def test_submit_reports_an_unreachable_farm(self, capsys):
        from repro.cli import main

        code = main([
            "submit", "--url", "http://127.0.0.1:1", "--implementations",
            "splice_plb", "--sweep", "degenerate",
        ])
        err = capsys.readouterr().err
        assert code == 1
        assert "no farm reachable" in err

    def test_submit_rejects_contradictory_grid_arguments(self, capsys):
        from repro.cli import main

        code = main(["submit", "--preset", "paper", "--sweep", "linear"])
        assert code == 2
        assert "--preset paper fixes the grid" in capsys.readouterr().err
