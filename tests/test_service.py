"""Tests for the simulation farm service: job queue, farm, HTTP API, CLI.

The farm's contract is that serving a campaign through the queue + warm
workers + shared cache is *observably identical* to ``splice campaign run``:
same cells, same payload bytes, same aggregation.  The tests here pin that,
plus the queueing semantics the batch path does not have: priority ordering,
FIFO fairness, cancellation at shard boundaries, per-job timeouts, the
cache short-circuit, and worker-crash fault isolation.
"""

import multiprocessing
import time

import pytest

from repro.campaign import CampaignSpec, ScenarioSweep, paper_grid, run_campaign, sweep_grid
from repro.evaluation.scenarios import SCENARIOS
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    TIMEOUT,
    Job,
    JobQueue,
    ServiceClient,
    ServiceError,
    Shard,
    SimulationFarm,
    resolve_workers,
    serve_farm_in_thread,
)

#: Runtime-registered runners (the slow/crashing stand-ins below) only reach
#: worker processes when the OS forks them from the registering parent.
fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="runtime-registered runners only reach workers under fork",
)


def small_spec(count=2, name="svc-small", seed=0):
    """A cheap single-implementation grid (degenerate scenarios simulate fast)."""
    return sweep_grid(
        ScenarioSweep(mode="degenerate", count=count),
        implementations=("splice_plb",),
        seeds=(seed,),
        name=name,
    )


class _SlowRunner:
    """Holds a worker busy for a deterministic, nontrivial interval."""

    def run_scenario(self, sets):
        time.sleep(0.15)
        return {"result": 1, "cycles": 1, "transactions": 0}


class _ExitingRunner:
    """Kills the whole worker process mid-shard (not an exception)."""

    def run_scenario(self, sets):
        import os

        os._exit(3)


def _register(label, builder):
    from repro.devices.registry import register_runner

    register_runner(label, builder, replace=True)


def _unregister(label):
    from repro.devices.registry import _BUILDERS

    _BUILDERS.pop(label, None)


# ---------------------------------------------------------------------------
# JobQueue unit semantics (no processes involved)
# ---------------------------------------------------------------------------


class TestJobQueue:
    def _job(self, job_id, priority=0):
        job = Job(job_id, small_spec(name=f"q-{job_id}"), priority=priority)
        job.pending_shards.append(Shard(job_id, 0, []))
        return job

    def test_higher_priority_pops_first(self):
        queue = JobQueue()
        low, high = self._job("low", priority=0), self._job("high", priority=5)
        queue.push(low)
        queue.push(high)
        assert queue.pop() is high
        assert queue.pop() is low
        assert queue.pop() is None

    def test_fifo_within_a_priority(self):
        queue = JobQueue()
        jobs = [self._job(f"j{i}") for i in range(4)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop() for _ in jobs] == jobs

    def test_repush_keeps_the_original_queue_position(self):
        """A job re-pushed while it still has pending shards must not lose
        its FIFO slot to a later submission of the same priority."""
        queue = JobQueue()
        first, second = self._job("first"), self._job("second")
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        queue.push(first)  # still has pending shards: goes back in
        assert queue.pop() is first
        assert queue.pop() is second

    def test_terminal_jobs_are_skipped_lazily(self):
        queue = JobQueue()
        cancelled, live = self._job("dead"), self._job("live")
        queue.push(cancelled)
        queue.push(live)
        cancelled.state = CANCELLED  # cancel() just flips state; heap untouched
        assert queue.pop() is live
        assert queue.pop() is None

    def test_jobs_without_pending_shards_are_skipped(self):
        queue = JobQueue()
        drained = self._job("drained")
        drained.pending_shards.clear()
        queue.push(drained)
        assert len(queue) == 0
        assert queue.peek() is None
        assert queue.pop() is None

    def test_len_counts_distinct_dispatchable_jobs(self):
        queue = JobQueue()
        job = self._job("dup")
        queue.push(job)
        queue.push(job)  # re-push duplicates the heap entry, not the job
        assert len(queue) == 1


class TestResolveWorkers:
    def test_zero_means_one_per_cpu(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


# ---------------------------------------------------------------------------
# Farm behaviour (real worker processes)
# ---------------------------------------------------------------------------


class TestFarm:
    def test_farm_result_is_bit_identical_to_batch_on_the_paper_grid(self):
        grid = paper_grid()
        batch = run_campaign(grid)
        with SimulationFarm(workers=2) as farm:
            job = farm.submit(grid)
            assert job.wait(timeout=120) == DONE
            assert job.result().payload() == batch.payload()

    def test_repeat_submission_short_circuits_without_touching_workers(self):
        spec = small_spec(name="svc-cachehit")
        with SimulationFarm(workers=1) as farm:
            first = farm.submit(spec)
            assert first.wait(timeout=60) == DONE
            executed_before = farm.counters["cells_executed"]

            second = farm.submit(spec)
            # Fully cached: terminal at submit time, no queueing, no worker.
            assert second.state == DONE
            assert len(second.cached) == spec.cell_count
            assert len(second.fresh) == 0
            assert farm.counters["cells_executed"] == executed_before
            stats = farm.stats()
            assert stats["cache_hit_rate"] == 0.5  # 0/N then N/N
            assert stats["queue_depth"] == 0

    def test_submit_requires_a_running_farm(self):
        farm = SimulationFarm(workers=1)
        with pytest.raises(RuntimeError):
            farm.submit(small_spec())

    @fork_only
    def test_priority_cancel_and_timeout_semantics(self):
        """One slow worker, deterministic queueing behind it.

        While the worker grinds through a slow job's first shard, everything
        submitted after it is provably queued — so priority overtaking,
        queued-cancellation and queued-timeout can be asserted exactly.
        """
        _register("zz_slow", _SlowRunner)
        try:
            slow_spec = CampaignSpec(
                implementations=("zz_slow",), scenarios=SCENARIOS[:3], name="slow"
            )
            with SimulationFarm(workers=1, shard_size=1) as farm:
                slow = farm.submit(slow_spec)  # 3 shards x 0.15s
                low = farm.submit(small_spec(name="low"), priority=0)
                high = farm.submit(small_spec(name="high", seed=1), priority=5)
                doomed = farm.submit(small_spec(name="doomed", seed=2), priority=0)
                expiring = farm.submit(
                    small_spec(name="expiring", seed=3), timeout_s=0.05
                )

                # Queued cancellation: drops instantly, never runs a cell.
                assert farm.cancel(doomed.id) is True
                assert doomed.state == CANCELLED
                assert farm.cancel(doomed.id) is False  # already terminal

                assert expiring.wait(timeout=30) == TIMEOUT
                with pytest.raises(ValueError):
                    expiring.result()  # holes in the grid: no result exists

                assert high.wait(timeout=60) == DONE
                assert low.wait(timeout=60) == DONE
                assert slow.wait(timeout=60) == DONE
                # Priority 5 overtook the earlier-submitted priority 0.
                assert high.finished < low.finished
                assert doomed.fresh == {} and doomed.cells_done == 0
        finally:
            _unregister("zz_slow")

    @fork_only
    def test_cancelling_a_running_job_stops_at_the_shard_boundary(self):
        _register("zz_slow", _SlowRunner)
        try:
            slow_spec = CampaignSpec(
                implementations=("zz_slow",), scenarios=SCENARIOS[:4], name="slow-cancel"
            )
            with SimulationFarm(workers=1, shard_size=1) as farm:
                job = farm.submit(slow_spec)
                with farm.lock:
                    while not job.in_flight:
                        farm.lock.wait(1.0)
                assert farm.cancel(job.id) is True
                assert job.state == CANCELLED
                # The in-flight shard runs to its boundary in the worker and
                # its late results are discarded, after which the farm is
                # fully available again for new jobs.
                follow_up = farm.submit(small_spec(name="after-cancel"))
                assert follow_up.wait(timeout=60) == DONE
                assert job.cells_done < len(job.cells)
        finally:
            _unregister("zz_slow")

    @fork_only
    def test_dead_worker_is_respawned_and_the_job_fails_structurally(self):
        """A worker killed mid-shard (twice) must not take the farm down:
        the shard is retried once on a fresh worker, then its cells get
        structured error records and the farm keeps serving."""
        _register("zz_exit", _ExitingRunner)
        try:
            crash_spec = CampaignSpec(
                implementations=("zz_exit",), scenarios=SCENARIOS[:1], name="crash"
            )
            with SimulationFarm(workers=1, shard_size=1) as farm:
                job = farm.submit(crash_spec)
                assert job.wait(timeout=60) == FAILED
                assert len(job.errors) == 1
                (error,) = job.errors.values()
                assert error.kind == "worker_crash"
                assert farm.counters["workers_respawned"] >= 2
                assert farm.counters["shards_retried"] == 1

                result = job.result()
                (cell,) = result.cells
                assert cell.error is not None and "worker_crash" in cell.error
                assert cell.cycles is None

                # The respawned worker serves the next job normally.
                follow_up = farm.submit(small_spec(name="after-crash"))
                assert follow_up.wait(timeout=60) == DONE
        finally:
            _unregister("zz_exit")


# ---------------------------------------------------------------------------
# Chaos: worker kills and graceful drain
# ---------------------------------------------------------------------------


class TestChaos:
    @fork_only
    def test_killing_a_busy_worker_leaves_results_intact(self):
        """``kill_worker`` mid-shard exercises the real crash-recovery path:
        the worker is respawned, the shard retried, and the job finishes
        with the same cells it would have produced unharmed."""
        _register("zz_slow", _SlowRunner)
        try:
            spec = CampaignSpec(
                implementations=("zz_slow",), scenarios=SCENARIOS[:4], name="chaos-kill"
            )
            with SimulationFarm(workers=2, shard_size=1) as farm:
                job = farm.submit(spec)
                with farm.lock:
                    while not job.in_flight:
                        farm.lock.wait(1.0)
                killed = farm.kill_worker()
                assert killed is not None
                assert job.wait(timeout=60) == DONE
                assert job.errors == {}
                assert len(job.fresh) == len(job.cells)
                assert farm.counters["workers_respawned"] >= 1
                assert farm.counters["shards_retried"] >= 1
                # The farm stays fully available after the chaos.
                follow_up = farm.submit(small_spec(name="after-chaos"))
                assert follow_up.wait(timeout=60) == DONE
        finally:
            _unregister("zz_slow")

    def test_kill_worker_with_no_live_workers_returns_none(self):
        farm = SimulationFarm(workers=1)
        assert farm.kill_worker() is None
        with SimulationFarm(workers=1) as running:
            assert running.kill_worker(worker_id=99) is None

    def test_chaos_on_a_real_grid_is_bit_identical_to_batch(self):
        """Kills injected while real simulation jobs flow: every job still
        completes and its payload matches the batch runner byte for byte."""
        specs = [small_spec(count=3, name=f"chaos-real-{i}", seed=40 + i) for i in range(4)]
        with SimulationFarm(workers=2, shard_size=1) as farm:
            jobs = [farm.submit(spec) for spec in specs]
            farm.kill_worker()
            for job in jobs:
                assert job.wait(timeout=120) == DONE
                assert job.errors == {}
            for spec, job in zip(specs, jobs):
                assert job.result().payload() == run_campaign(spec).payload()


class TestDrain:
    @fork_only
    def test_drain_finishes_running_jobs_then_rejects_new_ones(self):
        _register("zz_slow", _SlowRunner)
        try:
            spec = CampaignSpec(
                implementations=("zz_slow",), scenarios=SCENARIOS[:2], name="drain-wait"
            )
            with SimulationFarm(workers=1, shard_size=1) as farm:
                job = farm.submit(spec)
                outcome = farm.drain(timeout_s=30)
                assert outcome == {"drained": True, "cancelled": []}
                assert job.state == DONE
                assert job.cells_done == len(job.cells)
                assert farm.stats()["draining"] is True
                with pytest.raises(RuntimeError, match="draining"):
                    farm.submit(small_spec(name="too-late"))
        finally:
            _unregister("zz_slow")

    @fork_only
    def test_drain_timeout_cancels_leftovers_with_a_terminal_event(self):
        _register("zz_slow", _SlowRunner)
        try:
            spec = CampaignSpec(
                implementations=("zz_slow",), scenarios=SCENARIOS[:4], name="drain-cut"
            )
            with SimulationFarm(workers=1, shard_size=1) as farm:
                job = farm.submit(spec)
                with farm.lock:
                    while not job.in_flight:
                        farm.lock.wait(1.0)
                outcome = farm.drain(timeout_s=0.01)
                assert outcome["drained"] is False
                assert outcome["cancelled"] == [job.id]
                assert job.state == CANCELLED
                # Watchers see a terminal state event explaining the cut.
                last_state = [e for e in job.events if e["event"] == "state"][-1]
                assert last_state["state"] == CANCELLED
                assert last_state["reason"] == "drain timeout"
        finally:
            _unregister("zz_slow")

    def test_draining_farm_returns_503_over_http(self):
        with SimulationFarm(workers=1, name="drain-http") as farm:
            server, _thread = serve_farm_in_thread(farm)
            try:
                client = ServiceClient(
                    "http://127.0.0.1:%d" % server.server_address[1]
                )
                assert farm.drain(timeout_s=1)["drained"] is True
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(small_spec(name="post-drain"))
                assert excinfo.value.status == 503
                # Reads stay available while draining.
                assert client.healthz()["running"] is True
                assert client.stats()["draining"] is True
            finally:
                server.shutdown()
                server.server_close()


# ---------------------------------------------------------------------------
# HTTP API + client
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def served_farm():
    with SimulationFarm(workers=2, name="test-farm") as farm:
        server, _thread = serve_farm_in_thread(farm)
        try:
            yield farm, ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
        finally:
            server.shutdown()
            server.server_close()


class TestHTTPAPI:
    def test_submit_stream_and_result_match_the_batch_runner(self, served_farm):
        farm, client = served_farm
        spec = small_spec(count=3, name="http-flow")
        job = client.submit(spec, priority=2)
        assert job["state"] in (QUEUED, "running", DONE)
        assert job["cells_total"] == 3
        assert job["priority"] == 2

        events = list(client.events(job["id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "state" and events[-1]["state"] == DONE
        cell_events = [e for e in events if e["event"] == "cell"]
        assert len(cell_events) == 3
        assert all(e["label"] == "splice_plb" for e in cell_events)

        served = client.result(job["id"])
        batch = run_campaign(spec)
        assert served["cells"] == batch.payload()
        assert served["meta"]["executor"] == "farm"

    def test_event_stream_supports_resume_offsets(self, served_farm):
        farm, client = served_farm
        job = client.submit(small_spec(name="http-offset", seed=11))
        client.wait(job["id"], timeout=60)
        all_events = list(client.events(job["id"]))
        tail = list(client.events(job["id"], start=len(all_events) - 1))
        assert tail == all_events[-1:]

    def test_status_jobs_stats_and_health(self, served_farm):
        farm, client = served_farm
        assert client.healthz() == {"ok": True, "running": True}
        stats = client.stats()
        assert stats["worker_count"] == 2
        assert stats["shard_size"] == farm.shard_size
        assert {"cells_total", "cells_cached", "cells_executed"} <= set(stats["cells"])
        job = client.submit(small_spec(name="http-status", seed=12))
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == DONE
        assert final["cells_done"] == final["cells_total"]
        assert any(j["id"] == job["id"] for j in client.jobs())

    def test_delete_cancels_and_error_codes_are_specific(self, served_farm):
        farm, client = served_farm
        # 404: unknown endpoints and unknown jobs.
        for path in ("status", "result", "cancel"):
            with pytest.raises(ServiceError) as excinfo:
                getattr(client, path)("j999999")
            assert excinfo.value.status == 404
        # 400: bodies that are not campaign specs.
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"bogus": 1})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"implementations": ["no_such_label"]})
        assert excinfo.value.status == 400
        # Cancel flow: done jobs cannot be cancelled; cancelled jobs have no
        # result (410, distinct from 409 = still running).
        job = client.submit(small_spec(name="http-del", seed=13))
        client.wait(job["id"], timeout=60)
        assert client.cancel(job["id"])["cancelled"] is False
        assert client.result(job["id"])["meta"]["executor"] == "farm"

    def test_warm_resubmission_over_http_is_fully_cached(self, served_farm):
        farm, client = served_farm
        spec = small_spec(name="http-warm", seed=14)
        cold = client.submit_and_wait(spec, timeout=60)
        warm = client.submit_and_wait(spec, timeout=60)
        assert cold["state"] == warm["state"] == DONE
        assert warm["cells_cached"] == warm["cells_total"]
        assert warm["cells_executed"] == 0


class TestClientResilience:
    """Retry/resume behaviour of the stdlib client under flaky transport."""

    def _client(self):
        client = ServiceClient("http://127.0.0.1:1")  # nothing listens here
        client.RETRY_BACKOFF_S = 0.001  # keep test wall-clock negligible
        return client

    def test_get_retries_transient_connection_errors(self):
        client = self._client()
        calls = {"n": 0}

        def flaky(method, path, body=None, headers=None):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("transient")
            return {"ok": True}

        client._request_once = flaky
        assert client._request("GET", "/stats") == {"ok": True}
        assert calls["n"] == 3

    def test_get_gives_up_after_the_retry_budget(self):
        client = self._client()
        calls = {"n": 0}

        def always_down(method, path, body=None, headers=None):
            calls["n"] += 1
            raise ConnectionRefusedError("down")

        client._request_once = always_down
        with pytest.raises(ConnectionError):
            client._request("GET", "/stats")
        assert calls["n"] == 1 + client.GET_RETRIES

    def test_posts_and_deletes_are_never_retried(self):
        """A resent POST could double-submit; the first failure must surface."""
        client = self._client()
        calls = {"n": 0}

        def always_down(method, path, body=None, headers=None):
            calls["n"] += 1
            raise ConnectionError("down")

        client._request_once = always_down
        for method in ("POST", "DELETE"):
            calls["n"] = 0
            with pytest.raises(ConnectionError):
                client._request(method, "/jobs")
            assert calls["n"] == 1

    def test_keyed_submits_are_retried(self):
        """submit() sends an Idempotency-Key, which makes the POST safe to
        resend — the server answers a duplicate key with the original job —
        so submissions get the same retry budget as reads."""
        client = self._client()
        calls = {"n": 0, "keys": set()}

        def flaky(method, path, body=None, headers=None):
            calls["n"] += 1
            calls["keys"].add((headers or {}).get("Idempotency-Key"))
            if calls["n"] < 3:
                raise ConnectionError("transient")
            return {"id": "j000001"}

        client._request_once = flaky
        assert client.submit(small_spec(name="retry-post"))["id"] == "j000001"
        assert calls["n"] == 3
        # Every resend carried the SAME key — that is what makes it safe.
        assert len(calls["keys"]) == 1 and None not in calls["keys"]

    def test_http_error_responses_are_not_retried(self):
        """The server answered; retrying a 4xx/5xx can only repeat it."""
        client = self._client()
        calls = {"n": 0}

        def erroring(method, path, body=None, headers=None):
            calls["n"] += 1
            raise ServiceError(500, {"error": "boom"})

        client._request_once = erroring
        with pytest.raises(ServiceError):
            client._request("GET", "/stats")
        assert calls["n"] == 1

    def test_events_resume_after_a_midstream_disconnect(self, served_farm, monkeypatch):
        """A stream cut mid-flight reconnects at ``?from=N`` and the consumer
        still sees every event exactly once."""
        import repro.service.client as client_mod

        farm, client = served_farm
        job = client.submit(small_spec(count=3, name="resume", seed=31))
        client.wait(job["id"], timeout=60)
        full = list(client.events(job["id"]))
        assert len(full) > 3  # need room to cut the stream mid-flight

        real = client_mod.HTTPConnection
        state = {"armed": True}

        class _CutStream:
            """Yields two NDJSON lines, then dies like a reset connection."""

            def __init__(self, response):
                self._response = response
                self.status = response.status

            def read(self, *args):
                return self._response.read(*args)

            def __iter__(self):
                for count, line in enumerate(self._response):
                    if count >= 2:
                        raise ConnectionResetError("injected mid-stream cut")
                    yield line

        class Flaky(real):
            def request(self, method, path, **kwargs):
                self._chaos_path = path
                return super().request(method, path, **kwargs)

            def getresponse(self):
                response = super().getresponse()
                if state["armed"] and "/events" in self._chaos_path:
                    state["armed"] = False
                    return _CutStream(response)
                return response

        monkeypatch.setattr(client_mod, "HTTPConnection", Flaky)
        resilient = ServiceClient(f"http://{client.host}:{client.port}")
        resilient.RETRY_BACKOFF_S = 0.001
        resumed = list(resilient.events(job["id"]))
        assert not state["armed"], "the injected cut never fired"
        assert resumed == full

    def test_events_abort_after_consecutive_reconnect_failures(self):
        client = self._client()
        client.STREAM_RESUMES = 2
        client.timeout = 0.2
        with pytest.raises(OSError):
            list(client.events("j1"))


# ---------------------------------------------------------------------------
# CLI integration (the `submit` front end is a pure HTTP client)
# ---------------------------------------------------------------------------


class TestCLI:
    def test_workers_arg_spellings(self):
        import argparse

        from repro.cli import _workers_arg

        assert _workers_arg("auto") == 0
        assert _workers_arg("0") == 0
        assert _workers_arg("3") == 3
        with pytest.raises(argparse.ArgumentTypeError):
            _workers_arg("-2")
        with pytest.raises(argparse.ArgumentTypeError):
            _workers_arg("many")

    def test_submit_round_trip_against_a_live_farm(self, served_farm, capsys):
        from repro.cli import main

        farm, client = served_farm
        url = f"http://{client.host}:{client.port}"
        code = main([
            "submit", "--url", url, "--implementations", "splice_plb",
            "--sweep", "degenerate", "--sweep-count", "2", "--seeds", "21",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Submitted job" in out
        assert "# Campaign report" in out

    def test_submit_no_follow_prints_the_handle_only(self, served_farm, capsys):
        from repro.cli import main

        farm, client = served_farm
        url = f"http://{client.host}:{client.port}"
        code = main([
            "submit", "--url", url, "--no-follow", "--implementations",
            "splice_plb", "--sweep", "degenerate", "--sweep-count", "2",
            "--seeds", "22",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "follow with" in out

    def test_submit_reports_an_unreachable_farm(self, capsys):
        from repro.cli import main

        code = main([
            "submit", "--url", "http://127.0.0.1:1", "--implementations",
            "splice_plb", "--sweep", "degenerate",
        ])
        err = capsys.readouterr().err
        assert code == 1
        assert "no farm reachable" in err

    def test_submit_rejects_contradictory_grid_arguments(self, capsys):
        from repro.cli import main

        code = main(["submit", "--preset", "paper", "--sweep", "linear"])
        assert code == 2
        assert "--preset paper fixes the grid" in capsys.readouterr().err

    def test_serve_drains_gracefully_on_interrupt(self, capsys):
        """``splice serve`` + SIGINT = drain banner, clean exit code 0."""
        import signal
        import threading

        from repro.cli import main

        timer = threading.Timer(2.0, signal.raise_signal, args=(signal.SIGINT,))
        timer.daemon = True
        timer.start()
        try:
            rc = main(["serve", "--port", "0", "--workers", "1",
                       "--drain-timeout", "2"])
        finally:
            timer.cancel()
        assert rc == 0
        out = capsys.readouterr().out
        assert "draining" in out
        assert "shutting down" in out


# ---------------------------------------------------------------------------
# Backpressure, idempotency, stuck-worker watchdog, fuzz jobs
# ---------------------------------------------------------------------------


class _HangingRunner:
    """Goes heartbeat-silent: sleeps far longer than any test watchdog."""

    def run_scenario(self, sets):
        time.sleep(30)
        return {"result": 1, "cycles": 1, "transactions": 0}


class TestBackpressure:
    def test_saturated_farm_rejects_with_retry_after(self):
        """queue_limit=0 means every submission bounces — the deterministic
        way to pin the FarmSaturated contract without timing games."""
        from repro.service import FarmSaturated

        with SimulationFarm(workers=1, queue_limit=0) as farm:
            with pytest.raises(FarmSaturated) as exc:
                farm.submit(small_spec(name="bounced"))
            assert exc.value.retry_after_s > 0
            assert farm.counters["jobs_rejected"] == 1
            assert farm.stats()["saturated"] is True
            assert farm.stats()["queue_limit"] == 0

    def test_http_saturation_is_503_with_retry_after_header(self):
        with SimulationFarm(workers=1, queue_limit=0) as farm:
            server, _thread = serve_farm_in_thread(farm)
            try:
                client = ServiceClient(
                    "http://127.0.0.1:%d" % server.server_address[1]
                )
                with pytest.raises(ServiceError) as exc:
                    client.submit(small_spec(name="http-bounced"))
                assert exc.value.status == 503
                assert exc.value.retry_after is not None
                assert exc.value.retry_after >= 1
            finally:
                server.shutdown()
                server.server_close()

    @fork_only
    def test_limit_admits_again_once_jobs_finish(self):
        from repro.service import FarmSaturated

        _register("zz_slow", _SlowRunner)
        try:
            spec = CampaignSpec(
                implementations=("zz_slow",), scenarios=SCENARIOS[:2],
                name="bp-slow",
            )
            with SimulationFarm(workers=1, shard_size=1, queue_limit=1) as farm:
                first = farm.submit(spec)
                with pytest.raises(FarmSaturated):
                    farm.submit(small_spec(name="bp-over"))
                assert first.wait(timeout=60) == DONE
                # The slot freed; the same submission is admitted now.
                follow_up = farm.submit(small_spec(name="bp-after"))
                assert follow_up.wait(timeout=60) == DONE
        finally:
            _unregister("zz_slow")


class TestIdempotency:
    def test_duplicate_key_returns_the_original_job(self):
        with SimulationFarm(workers=1) as farm:
            spec = small_spec(name="idem")
            first = farm.submit(spec, idempotency_key="idem-key-1")
            again = farm.submit(spec, idempotency_key="idem-key-1")
            assert again is first
            # Even after the job finished, the key still dedupes.
            assert first.wait(timeout=60) == DONE
            assert farm.submit(spec, idempotency_key="idem-key-1") is first
            other = farm.submit(spec, idempotency_key="idem-key-2")
            assert other is not first

    def test_http_duplicate_submit_returns_original_id(self, served_farm):
        farm, client = served_farm
        spec = small_spec(name="http-idem", seed=61)
        first = client.submit(spec, idempotency_key="http-idem-key")
        again = client.submit(spec, idempotency_key="http-idem-key")
        assert again["id"] == first["id"]
        assert again.get("duplicate") is True
        assert "duplicate" not in first

    def test_client_generates_a_key_so_each_submit_is_distinct(self, served_farm):
        farm, client = served_farm
        spec = small_spec(name="http-fresh", seed=62)
        a = client.submit(spec)
        b = client.submit(spec)
        assert a["id"] != b["id"]


class TestStuckWatchdog:
    @fork_only
    def test_silent_worker_is_killed_retried_and_attributed(self):
        """A worker that stops heartbeating is SIGKILLed and the shard
        retried once; a silent retry fails the cells with ``worker_stuck``
        (not ``worker_crash``) and the farm keeps serving."""
        _register("zz_hang", _HangingRunner)
        try:
            spec = CampaignSpec(
                implementations=("zz_hang",), scenarios=SCENARIOS[:1],
                name="stuck",
            )
            with SimulationFarm(workers=1, shard_size=1,
                                stuck_timeout_s=0.4) as farm:
                job = farm.submit(spec)
                assert job.wait(timeout=60) == FAILED
                (error,) = job.errors.values()
                assert error.kind == "worker_stuck"
                assert "heartbeat-silent" in error.message
                assert farm.counters["workers_stuck_killed"] == 2
                assert farm.counters["shards_retried"] == 1
                kinds = [e["event"] for e in job.events]
                assert "worker_stuck" in kinds

                follow_up = farm.submit(small_spec(name="after-stuck"))
                assert follow_up.wait(timeout=60) == DONE
        finally:
            _unregister("zz_hang")

    def test_watchdog_can_be_disabled_and_defaults_are_generous(self):
        from repro.service import DEFAULT_STUCK_TIMEOUT_S

        with SimulationFarm(workers=1, stuck_timeout_s=None) as farm:
            job = farm.submit(small_spec(name="no-watchdog"))
            assert job.wait(timeout=60) == DONE
            assert farm.counters["workers_stuck_killed"] == 0
        assert DEFAULT_STUCK_TIMEOUT_S >= 60


class TestFuzzJobs:
    """Fuzz jobs as a first-class farm workload (needs Hypothesis)."""

    @pytest.fixture(autouse=True)
    def _needs_hypothesis(self):
        pytest.importorskip("hypothesis")

    @staticmethod
    def _local_session(seed, budget):
        """The deterministic payload an uninterrupted local session yields."""
        from repro.fuzz.session import run_session

        report = run_session(budget, seed, profile="quick", corpus_dir=None)
        return {
            "seed": seed,
            "budget": report.budget,
            "profile": report.profile,
            "with_faults": report.with_faults,
            "executed": report.executed,
            "rounds": report.rounds,
            "coverage": list(report.coverage),
            "counterexamples": [ce.describe() for ce in report.counterexamples],
            "exit_code": report.exit_code,
        }

    def test_fuzz_job_shards_across_workers_and_matches_local_sessions(self):
        from repro.service import FUZZ, FuzzJobSpec

        spec = FuzzJobSpec(seed_start=0, sessions=2, budget=4)
        with SimulationFarm(workers=2) as farm:
            job = farm.submit_fuzz(spec)
            assert job.kind == FUZZ
            assert job.wait(timeout=300) == DONE
            payload = job.fuzz_result()
        expected = [self._local_session(seed, 4) for seed in (0, 1)]
        assert payload["sessions"] == expected
        assert payload["executed"] == sum(s["executed"] for s in expected)
        merged = sorted({c for s in expected for c in s["coverage"]})
        assert payload["coverage"] == merged
        assert payload["errors"] == {}

    def test_fuzz_job_over_http_streams_session_events(self, served_farm):
        farm, client = served_farm
        snap = client.submit_fuzz(seed_start=5, sessions=2, budget=3)
        assert snap["kind"] == "fuzz"
        events = list(client.events(snap["id"]))
        kinds = [e["event"] for e in events]
        assert kinds.count("session") == 2
        assert kinds[-1] == "state"
        result = client.result(snap["id"])
        assert [s["seed"] for s in result["sessions"]] == [5, 6]
        assert result["meta"]["sessions_total"] == 2

    def test_fuzz_jobs_are_deterministic_across_submissions(self, served_farm):
        """Two identical fuzz submissions produce bit-identical deterministic
        payloads (sessions, coverage, counterexamples) — the property the
        recovery guarantee builds on."""
        farm, client = served_farm
        runs = []
        for _ in range(2):
            snap = client.submit_fuzz(seed_start=7, sessions=2, budget=3)
            client.wait(snap["id"], timeout=300)
            runs.append(client.result(snap["id"]))
        assert runs[0]["sessions"] == runs[1]["sessions"]
        assert runs[0]["coverage"] == runs[1]["coverage"]
        assert runs[0]["counterexamples"] == runs[1]["counterexamples"]

    def test_invalid_fuzz_spec_is_rejected(self, served_farm):
        farm, client = served_farm
        with pytest.raises(ServiceError) as exc:
            client.submit_fuzz(seed_start=0, sessions=0, budget=4)
        assert exc.value.status == 400
