"""Transaction scripting and compiled wait conditions.

Proves the harness-side contract of the scripted driver path:

* a :class:`TransactionScript` executed inside the bus master is
  **cycle-for-cycle identical** (full-signal traces) to issuing the same
  operations through blocking ``ProcessorModel.execute`` calls with the
  inter-operation gap stepped in Python — on every kernel and bus;
* :class:`~repro.rtl.simulator.WaitCondition` waits behave exactly like
  ``run_until`` with an equivalent lambda on every kernel (checked before
  stepping, timeout semantics, ``==`` and ``>=`` forms);
* the in-master poll loop honours the poll limit and surfaces the same
  failure the software ``WAIT_FOR_RESULTS`` loop raised;
* ``record_transactions`` bounds memory: with it off (the campaign
  default), no transaction objects are retained while the counters keep
  counting.
"""

import pytest

from repro.buses import (
    BusTransaction,
    PollOp,
    TransactionKind,
    TransactionOp,
    TransactionScript,
    create_bus,
)
from repro.core.syntax.errors import SpliceGenerationError
from repro.devices.interpolator import build_splice_interpolator
from repro.devices.registry import build_runner
from repro.rtl import (
    CompiledSimulator,
    ReferenceSimulator,
    SimulationError,
    Simulator,
    TraceRecorder,
    WaitCondition,
)
from repro.soc.cpu import ProcessorModel
from repro.soc.system import build_system

KERNELS = (
    ("reference", ReferenceSimulator),
    ("event", Simulator),
    ("compiled", CompiledSimulator),
)

SOURCES = {
    "plb": "%device_name dev\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n",
    "fcb": "%device_name dev\n%bus_type fcb\n%bus_width 32\n",
    "apb": "%device_name dev\n%bus_type apb\n%bus_width 32\n%base_address 0x40000000\n",
}
DECL = "void write_reg(char idx, int value);\nint read_reg(char idx);\n"


def _register_file(bus, factory):
    storage = {}
    system = build_system(
        SOURCES[bus] + DECL,
        behaviors={
            "write_reg": lambda idx, value: storage.__setitem__(idx, value),
            "read_reg": lambda idx: storage.get(idx, 0),
        },
        simulator_factory=factory,
    )
    return system


def _ops_for(system):
    """A write beat sequence against the register-file device."""
    from repro.core.drivers.macro_lib import macro_library_for

    module = system.module_params
    lib = macro_library_for(system.generation.bus.name)
    ops = []
    txns = []
    for func_id, words in ((1, [3]), (1, [0xCAFE]), (2, [5])):
        for txn in lib.write_transactions(module, func_id, words):
            ops.append(TransactionOp(txn))
            txns.append(txn)
    return ops, txns


class TestScriptMatchesBlockingExecution:
    """One queued script == N blocking executes, bit for bit, every cycle."""

    @pytest.mark.parametrize("bus", sorted(SOURCES))
    @pytest.mark.parametrize("label,factory", KERNELS)
    def test_cycle_exact(self, bus, label, factory):
        scripted = _register_file(bus, factory)
        blocking = _register_file(bus, factory)
        rec_s = TraceRecorder(scripted.simulator, scripted.simulator.signals)
        rec_b = TraceRecorder(blocking.simulator, blocking.simulator.signals)

        ops_s, txns_s = _ops_for(scripted)
        ops_b, txns_b = _ops_for(blocking)

        script = scripted.processor.execute_script(ops_s)
        for op in ops_b:
            blocking.processor.execute(op.transaction)

        assert scripted.simulator.cycle == blocking.simulator.cycle
        assert script.transactions == len(ops_s)
        assert script.done and not script.poll_failed
        assert [t.done for t in txns_s] == [t.done for t in txns_b]
        # The master's WAKE toggle and script counter are harness-path
        # bookkeeping (one script submit vs. three blocking submits), not
        # bus waveforms; every protocol-visible signal must match exactly.
        internal = (".WAKE", ".SCRIPTS")

        def visible(sample):
            return {k: v for k, v in sample.items() if not k.endswith(internal)}

        for cycle, (sample_s, sample_b) in enumerate(
            zip(rec_s.trace.samples, rec_b.trace.samples)
        ):
            assert visible(sample_s) == visible(sample_b), (bus, label, cycle)
        assert len(rec_s.trace) == len(rec_b.trace)

    def test_empty_script_advances_nothing(self):
        system = _register_file("plb", Simulator)
        before = system.simulator.cycle
        script = system.processor.execute_script([])
        assert script.done and script.transactions == 0
        assert system.simulator.cycle == before

    def test_second_script_while_one_in_flight_is_rejected(self):
        system = _register_file("plb", Simulator)
        master = system.master
        master.submit_script(TransactionScript([TransactionOp(
            BusTransaction(TransactionKind.WRITE, 0x80000004, data=[1])
        )]))
        with pytest.raises(ValueError, match="already has a script"):
            master.submit_script(TransactionScript([]))

    def test_blocking_execute_while_script_in_flight_is_rejected(self):
        # Scripts have queue priority and advance the completion count, so a
        # mixed-in blocking transaction could unblock on the wrong completion.
        system = _register_file("plb", Simulator)
        system.master.submit_script(TransactionScript([TransactionOp(
            BusTransaction(TransactionKind.WRITE, 0x80000004, data=[1])
        )]))
        with pytest.raises(ValueError, match="cannot be interleaved"):
            system.processor.execute(
                BusTransaction(TransactionKind.WRITE, 0x80000008, data=[2])
            )


class TestPollOps:
    @pytest.mark.parametrize("label,factory", KERNELS)
    def test_poll_limit_failure_is_identical_across_kernels(self, label, factory):
        # APB is strictly synchronous: the driver polls CALC_DONE.  With a
        # poll limit shorter than the calculation latency the scripted poll
        # loop must fail exactly like the software loop did.
        device = build_splice_interpolator("splice_apb", simulator_factory=factory)
        driver = device.system.drivers["interpolate"]
        driver.poll_limit = 1
        with pytest.raises(SpliceGenerationError, match="did not complete within 1 status polls"):
            driver(2, [1, 2], 2, [3, 4], 1, [2])

    def test_successful_polls_are_counted(self):
        device = build_splice_interpolator("splice_apb")
        out = device.run_scenario([[1, 2], [3, 4], [2]])
        driver = device.system.drivers["interpolate"]
        assert driver.last_call.polls >= 1
        assert driver.last_call.transactions > driver.last_call.polls
        assert out["cycles"] > 0


class TestWaitCondition:
    @pytest.mark.parametrize("label,factory", KERNELS)
    def test_matches_run_until(self, label, factory):
        def build(f):
            sim = f()
            count = sim.signal("count", width=8)
            sim.add_clocked(lambda: setattr(count, "next", count.value + 1))
            sim.reset()
            return sim, count

        sim_a, count_a = build(factory)
        sim_b, count_b = build(factory)
        took = sim_a.wait_until(WaitCondition(count_a, 5))
        reference = sim_b.run_until(lambda: count_b.value == 5)
        assert took == reference
        assert sim_a.cycle == sim_b.cycle

    @pytest.mark.parametrize("label,factory", KERNELS)
    def test_already_true_returns_zero_even_with_zero_timeout(self, label, factory):
        sim = factory()
        flag = sim.signal("flag", width=1, reset=1)
        sim.reset()
        assert sim.wait_until(WaitCondition(flag, 1), timeout=0) == 0
        assert sim.cycle == 0

    @pytest.mark.parametrize("label,factory", KERNELS)
    def test_timeout_raises_after_exactly_timeout_cycles(self, label, factory):
        sim = factory()
        flag = sim.signal("flag", width=1)
        sim.add_clocked(lambda: None)
        sim.reset()
        with pytest.raises(SimulationError, match="timed out after 7 cycles"):
            sim.wait_until(WaitCondition(flag, 1), timeout=7)
        assert sim.cycle == 7

    @pytest.mark.parametrize("label,factory", KERNELS)
    def test_ge_condition(self, label, factory):
        sim = factory()
        count = sim.signal("count", width=8)
        sim.add_clocked(lambda: setattr(count, "next", count.value + 2))
        sim.reset()
        took = sim.wait_until(WaitCondition(count, 5, op=">="))
        assert count.value >= 5
        assert took == 3

    def test_bad_op_rejected(self):
        sim = Simulator()
        sig = sim.signal("s")
        with pytest.raises(ValueError, match="unsupported wait op"):
            WaitCondition(sig, 1, op="<")

    def test_value_masked_to_signal_width(self):
        sim = Simulator()
        sig = sim.signal("s", width=4)
        assert WaitCondition(sig, 0x13).value == 0x3


class TestRecordTransactions:
    def test_default_retains_transactions(self):
        system = _register_file("plb", Simulator)
        ops, txns = _ops_for(system)
        system.processor.execute_script(ops)
        assert system.processor.executed == txns
        assert system.processor.transactions_issued == len(txns)
        assert system.master.completed == txns

    def test_opt_out_keeps_counters_but_no_objects(self):
        system = build_system(
            SOURCES["plb"] + DECL,
            behaviors={"write_reg": lambda idx, value: None, "read_reg": lambda idx: 0},
            record_transactions=False,
        )
        system.drivers["write_reg"](1, 2)
        count = system.drivers["write_reg"].last_call.transactions
        assert count > 0
        assert system.processor.executed == []
        assert system.master.completed == []
        assert system.processor.transactions_issued == count
        assert system.master.transactions_completed == count

    def test_campaign_runners_do_not_record(self):
        for label in ("splice_plb", "simple_plb", "optimized_fcb"):
            runner = build_runner(label)
            processor = getattr(runner, "processor", None) or runner.system.processor
            assert processor.record_transactions is False, label
            runner.run_scenario([[1, 2], [3, 4], [2]])
            assert processor.executed == []
            assert processor.transactions_issued > 0


class TestProcessorExecuteStillBlocking:
    """The per-transaction path waits on the completion-count signal."""

    def test_execute_round_trip(self):
        sim = Simulator()
        from repro.buses import PLBMaster, PLBSlaveBundle

        plb = PLBSlaveBundle("plb", num_slots=8)
        master = PLBMaster("master", plb, base_address=0x1000)

        class EchoSlave:
            def __init__(self, plb):
                self.plb = plb
                self.stored = {}

            def tick(self):
                plb = self.plb
                plb.wr_ack.next = 0
                plb.rd_ack.next = 0
                if plb.wr_req.value and plb.wr_ce.value:
                    self.stored[plb.selected_slot(True)] = plb.data_to_slave.value
                    plb.wr_ack.next = 1
                elif plb.rd_req.value and plb.rd_ce.value:
                    plb.data_from_slave.next = self.stored.get(plb.selected_slot(False), 0)
                    plb.rd_ack.next = 1

        slave = EchoSlave(plb)
        sim.register_module(master)
        sim.add_signals(plb.signals())
        sim.add_clocked(slave.tick)
        sim.reset()
        processor = ProcessorModel(sim, master)
        write = processor.execute(BusTransaction(TransactionKind.WRITE, 0x1008, data=[0xBEEF]))
        read = processor.execute(BusTransaction(TransactionKind.READ, 0x1008))
        assert write.done and read.result == 0xBEEF
        assert processor.transactions_issued == 2
        assert master.completion_count.value == 2
