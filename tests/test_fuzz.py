"""The fuzz subsystem: case model, watchdog, oracle, shrinker, session.

The acceptance-grade checks live here too: a deliberately seeded kernel bug
(a one-token mutation of the compiled kernel's generated cycle-leap code)
must be *found* by a small fixed-seed session, *shrunk* to a small case,
*serialized* to a corpus record, and that record must *replay clean* on the
unmutated kernels — the full corpus lifecycle in one test.  Rigged kernels
synthesize one counterexample per verdict kind so the corpus round-trip
(serialize → load → replay → identical verdict) is covered for every kind.
"""

import json

import pytest

from repro.fuzz import (
    IDLE,
    CaseVerdict,
    Counterexample,
    FuzzCall,
    FuzzCase,
    FuzzFunction,
    FuzzTopology,
    VERDICT_KINDS,
    case_watchdog,
    corpus_files,
    minimize,
    replay_case,
    run_case,
    save_case,
    watchdog_available,
)
from repro.fuzz.session import run_session
from repro.fuzz.watchdog import CaseHang
from repro.rtl import CompiledSimulator, ReferenceSimulator, Simulator


def _topology(**overrides):
    defaults = dict(
        bus="plb",
        functions=(
            FuzzFunction("f0", "poke"),
            FuzzFunction("f1", "peek"),
            FuzzFunction("f2", "stream", calc_latency=24),
        ),
    )
    defaults.update(overrides)
    return FuzzTopology(**defaults)


def _case(**overrides):
    defaults = dict(
        topology=_topology(),
        calls=(
            FuzzCall("f0", (3, 0xDEADBEEF)),
            FuzzCall.idle(40),
            FuzzCall("f2", ((1, 2, 0xFFFFFFFF),)),
            FuzzCall("f1", (3,)),
        ),
    )
    defaults.update(overrides)
    return FuzzCase(**defaults)


# -- seeded kernel mutations (the bugs the fuzzer must convict) --------------


class OvershootCompiled(CompiledSimulator):
    """Cycle-leap overshoot: wakes one cycle late from every leap."""

    def _codegen(self, *args, **kwargs):
        source = super()._codegen(*args, **kwargs)
        assert "_skip = s._next_timed - cyc" in source
        return source.replace(
            "_skip = s._next_timed - cyc", "_skip = s._next_timed - cyc + 1"
        )


class StuckLeapCompiled(CompiledSimulator):
    """Leaps advance the clock but not the step budget: the run never ends."""

    def _codegen(self, *args, **kwargs):
        source = super()._codegen(*args, **kwargs)
        assert "_done += _skip" in source
        return source.replace("_done += _skip", "_done += 0")


def _overshoot_factories(case):
    return {
        "reference": ReferenceSimulator,
        "compiled": OvershootCompiled if case.leap else CompiledSimulator,
    }


# -- rigged kernels for the per-kind synthetic counterexamples ---------------


class MonitorBlindSimulator(Simulator):
    """Swallows the first attached monitor — the SIS protocol monitor —
    so real violations go unreported while traces stay identical."""

    def add_monitor(self, fn):
        if not getattr(self, "_blinded", False):
            self._blinded = True
            return
        super().add_monitor(fn)


class LyingStatsSimulator(Simulator):
    """A scan kernel that claims it leaped — leap accounting cannot balance."""

    def step(self, cycles=1):
        super().step(cycles)
        self.stats.leaped_cycles += 1


class WedgedSimulator(Simulator):
    """Never finishes a step call; only the watchdog can end it."""

    def step(self, cycles=1):
        while True:
            super().step(1)


class CrashingSimulator(Simulator):
    """Dies mid-run once the workload is underway."""

    def step(self, cycles=1):
        if self.cycle > 2:
            raise RuntimeError("kernel exploded")
        super().step(cycles)


def _boom_factory():
    raise RuntimeError("builder exploded")


class TestCaseModel:
    def test_json_round_trip_preserves_token(self):
        case = _case()
        clone = FuzzCase.from_json(case.to_json())
        assert clone == case
        assert clone.token == case.token

    def test_fault_token_is_canonicalised(self):
        # Short spelling and canonical spelling are the same case.
        short = _case(faults="bit_flip:DATA_IN:5")
        full = _case(faults="bit_flip:DATA_IN:5:1:*")
        assert short.faults == "bit_flip:DATA_IN:5:1:*"
        assert short.token == full.token

    def test_token_is_stable_across_processes(self):
        # sha256 of canonical JSON — no per-process hash randomisation.
        assert _case().token == FuzzCase.from_dict(_case().describe()).token

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            _topology(bus="vme")
        with pytest.raises(ValueError):
            _topology(dma=True, bus="opb")
        with pytest.raises(ValueError):
            FuzzTopology(bus="plb", functions=())
        with pytest.raises(KeyError):
            _case(calls=(FuzzCall("nope", (1,)),))
        with pytest.raises(ValueError):
            FuzzCall.idle(0)

    def test_spec_source_targets_the_right_bus(self):
        assert "%bus_type plb" in _topology().spec_source()
        fcb = _topology(bus="fcb", burst=True, dma=False)
        assert "%burst_support true" in fcb.spec_source()

    def test_behaviors_share_one_store_per_system(self):
        behaviors = _topology().behaviors()
        behaviors["f0"](3, 99)
        assert behaviors["f1"](3) == 99
        # A fresh behaviours dict is a fresh store.
        assert _topology().behaviors()["f1"](3) == 0


class TestWatchdog:
    def test_kills_a_busy_loop(self):
        assert watchdog_available()
        with pytest.raises(CaseHang):
            with case_watchdog(0.2):
                while True:
                    pass

    def test_zero_timeout_disables(self):
        with case_watchdog(0) as armed:
            assert armed is False

    def test_oracle_reports_hang_for_wedged_kernel(self):
        verdict = run_case(
            _case(),
            kernel_factories={"reference": ReferenceSimulator, "wedged": WedgedSimulator},
            timeout_s=0.3,
        )
        assert verdict.kind == "hang"
        assert verdict.kernel == "wedged"


class TestOracle:
    def test_clean_kernels_agree(self):
        verdict = run_case(_case())
        assert verdict.ok, verdict
        assert verdict.kind == "pass"

    def test_overshoot_mutation_is_convicted(self):
        verdict = run_case(_case(), kernel_factories=_overshoot_factories(_case()))
        assert verdict.kind == "divergence"
        assert verdict.kernel == "compiled"

    def test_crash_is_contained(self):
        verdict = run_case(
            _case(),
            kernel_factories={"reference": ReferenceSimulator, "crash": CrashingSimulator},
        )
        assert verdict.kind == "crash"
        assert "kernel exploded" in verdict.detail

    def test_verdict_kinds_are_closed(self):
        with pytest.raises(ValueError):
            CaseVerdict(kind="mystery")
        assert "pass" in VERDICT_KINDS


class TestShrink:
    def test_minimizer_drops_irrelevant_structure(self):
        # The "bug": any case that still calls f2 with a non-empty stream.
        def reproduces(candidate):
            return any(
                call.func == "f2" and call.args and len(call.args[0]) > 0
                for call in candidate.calls
            )

        shrunk, attempts = minimize(_case(), reproduces, max_attempts=200)
        assert reproduces(shrunk)
        assert attempts > 0
        # Everything but one short f2 stream call should be gone.
        assert len(shrunk.calls) == 1
        assert shrunk.calls[0].func == "f2"
        assert len(shrunk.calls[0].args[0]) == 1
        assert len(shrunk.topology.functions) == 1

    def test_minimizer_is_verdict_preserving_and_bounded(self):
        calls = 0

        def never(candidate):
            nonlocal calls
            calls += 1
            return False

        shrunk, attempts = minimize(_case(), never, max_attempts=17)
        assert shrunk == _case()
        assert attempts == calls == 17


class TestSessionContainment:
    """Satellite: crash containment and deterministic budget accounting."""

    def test_builder_error_is_contained_and_session_continues(self):
        def flaky_factories(case):
            # Deterministic per case: roughly a third of builds explode.
            broken = int(case.token, 16) % 3 == 0
            return {
                "reference": ReferenceSimulator,
                "event": _boom_factory if broken else Simulator,
            }

        report = run_session(
            12, 5, corpus_dir=None, kernel_factories=flaky_factories, round_size=4
        )
        kinds = [ce.verdict.kind for ce in report.counterexamples]
        assert "builder_error" in kinds
        # The session absorbed the failures and still spent its whole budget.
        assert report.executed == 12
        assert report.exit_code == 1
        failing = {ce.case.token for ce in report.counterexamples}
        assert set(report.case_tokens) - failing, "session never ran a passing case"

    def test_session_is_deterministic(self):
        first = run_session(8, 21, corpus_dir=None, round_size=4)
        second = run_session(8, 21, corpus_dir=None, round_size=4)
        assert first.case_tokens == second.case_tokens
        assert [ce.token for ce in first.counterexamples] == [
            ce.token for ce in second.counterexamples
        ]
        assert first.exit_code == second.exit_code == 0


class TestCorpusRoundTrip:
    """Satellite: serialize → replay → identical verdict, per failure kind."""

    def _rig(self, kind):
        base = _case()
        if kind == "divergence":
            return base, _overshoot_factories(base)
        if kind == "monitor_mismatch":
            # A real violation the blinded kernel fails to report.
            case = FuzzCase(
                topology=FuzzTopology(bus="plb", functions=(FuzzFunction("f0", "poke"),)),
                calls=(FuzzCall("f0", (1, 7)), FuzzCall.idle(4)),
                faults="stuck_at_1:DATA_OUT_VALID:5:2",
            )
            return case, {
                "reference": ReferenceSimulator,
                "blind": MonitorBlindSimulator,
            }
        if kind == "leap_miscount":
            return base, {
                "reference": ReferenceSimulator,
                "liar": LyingStatsSimulator,
            }
        if kind == "hang":
            return base, {
                "reference": ReferenceSimulator,
                "wedged": WedgedSimulator,
            }
        assert kind == "builder_error"
        return base, {"reference": ReferenceSimulator, "boom": _boom_factory}

    @pytest.mark.parametrize(
        "kind", ["divergence", "monitor_mismatch", "leap_miscount", "hang", "builder_error"]
    )
    def test_round_trip_reproduces_verdict(self, kind, tmp_path):
        case, factories = self._rig(kind)
        timeout = 0.3 if kind == "hang" else 10.0
        verdict = run_case(case, kernel_factories=factories, timeout_s=timeout)
        assert verdict.kind == kind, verdict

        record = Counterexample(
            case=case, verdict=verdict, discovered={"seed": 0, "synthetic": True}
        )
        path = save_case(record, tmp_path)
        assert path.name == f"{kind}-{case.token}.json"

        loaded = Counterexample.load(path)
        assert loaded.case == case
        assert loaded.verdict == verdict
        replayed = replay_case(path, kernel_factories=factories, timeout_s=timeout)
        assert replayed.kind == kind

    def test_edited_case_with_stale_token_is_rejected(self, tmp_path):
        record = Counterexample(case=_case(), verdict=CaseVerdict("pass"))
        path = save_case(record, tmp_path)
        data = json.loads(path.read_text())
        data["case"]["calls"].pop()  # hand-edit without re-canonicalising
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="token"):
            Counterexample.load(path)


class TestMutationAcceptance:
    """The seeded bug is found, shrunk, saved, and replays clean."""

    def test_session_finds_and_shrinks_the_seeded_bug(self, tmp_path):
        report = run_session(
            6,
            0,
            corpus_dir=tmp_path,
            kernel_factories=_overshoot_factories,
            round_size=3,
            shrink_attempts=40,
            timeout_s=5.0,
        )
        assert report.exit_code == 1
        kinds = {ce.verdict.kind for ce in report.counterexamples}
        assert kinds == {"divergence"}
        # Shrunk hard: the published counterexample is a one- or two-step
        # workload, not the generated original.
        smallest = min(report.counterexamples, key=lambda ce: len(ce.case.calls))
        assert len(smallest.case.calls) <= 2
        # The corpus lifecycle closes: the saved case replays CLEAN on the
        # real kernels (the bug is in the mutant, not the repo).
        saved = corpus_files(tmp_path)
        assert saved
        for path in saved:
            assert replay_case(path).ok

    def test_shipped_corpus_found_real_divergences(self):
        """The committed corpus entries reproduce their recorded verdicts
        against the mutation that discovered them."""
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        path = next(p for p in corpus_files(corpus) if p.name.startswith("divergence-"))
        record = Counterexample.load(path)
        verdict = replay_case(record, kernel_factories=_overshoot_factories(record.case))
        assert verdict.kind == "divergence"
