"""Tests for the fault-injection subsystem: specs, kernels, matrix, campaign.

The load-bearing property is the one the differential class proves: all
three kernels stay **cycle-exact under injection** — same traces, same
outcomes, same monitor violations — so a fault campaign measures monitor
efficacy, not kernel-scheduling artifacts.  Around that sit the schedule
grammar, the digest-separation guarantees (a cache must never serve a
faulted result as clean), the monitor-efficacy matrix, the campaign fault
axis with its structured error records, and the ``splice faults`` CLI.
"""

import json

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignSpec,
    SerialExecutor,
    ShardedExecutor,
    cell_digest,
    run_campaign,
)
from repro.devices.interpolator import build_splice_interpolator
from repro.devices.registry import build_runner
from repro.evaluation.scenarios import SCENARIOS
from repro.faults import (
    FAULT_KINDS,
    FaultController,
    FaultSchedule,
    FaultSpec,
    coerce_schedule,
    matrix_to_markdown,
    matrix_to_payload,
    run_fault_matrix,
    sis_targets,
)
from repro.rtl import CompiledSimulator, ReferenceSimulator, Simulator, TraceRecorder


class TestFaultSpec:
    def test_token_round_trip(self):
        spec = FaultSpec("bit_flip", "DATA_IN", 30, duration=1, bit=7)
        assert spec.token == "bit_flip:DATA_IN:30:1:7"
        assert FaultSpec.parse(spec.token) == spec

    def test_shorthand_tokens_default_duration_and_bit(self):
        short = FaultSpec.parse("stuck_at_1:IO_ENABLE:40")
        assert short == FaultSpec("stuck_at_1", "IO_ENABLE", 40, duration=1, bit=None)
        # The canonical token always re-emits the full five-field form.
        assert short.token == "stuck_at_1:IO_ENABLE:40:1:*"
        with_duration = FaultSpec.parse("stuck_at_1:IO_ENABLE:40:3")
        assert with_duration.duration == 3 and with_duration.bit is None

    @pytest.mark.parametrize(
        "token",
        [
            "stuck_at_1:IO_ENABLE",  # too few fields
            "stuck_at_1:IO_ENABLE:40:1:0:9",  # too many fields
            "melting:IO_ENABLE:40",  # unknown class
            "stuck_at_1:MAGIC_WIRE:40",  # unknown target
            "stuck_at_1:IO_ENABLE:-1",  # negative cycle
            "stuck_at_1:IO_ENABLE:40:0",  # zero duration
        ],
    )
    def test_malformed_tokens_rejected(self, token):
        with pytest.raises(ValueError):
            FaultSpec.parse(token)

    def test_masks_per_class(self):
        full = (1 << 4) - 1
        assert FaultSpec("stuck_at_0", "FUNC_ID", 0).masks(4) == (0, 0, 0)
        assert FaultSpec("stuck_at_1", "FUNC_ID", 0, bit=2).masks(4) == (full, 4, 0)
        assert FaultSpec("bit_flip", "DATA_IN", 0, bit=3).masks(4) == (full, 0, 8)
        # A whole-signal flip inverts bit 0 by convention.
        assert FaultSpec("bit_flip", "DATA_IN", 0).masks(4) == (full, 0, 1)
        # drop_beat/dup_beat are placements of the low/high primitives.
        assert FaultSpec("drop_beat", "DATA_IN_VALID", 0).masks(1) == (0, 0, 0)
        assert FaultSpec("dup_beat", "IO_ENABLE", 0).masks(1) == (1, 1, 0)

    def test_schedule_is_canonically_ordered(self):
        late = FaultSpec("stuck_at_1", "IO_ENABLE", 50)
        early = FaultSpec("bit_flip", "DATA_IN", 10, bit=0)
        schedule = FaultSchedule.of(late, early)
        assert schedule.specs == (early, late)
        # Construction order never changes the identity.
        other = FaultSchedule.of(early, late)
        assert schedule.token == other.token
        assert schedule.fingerprint == other.fingerprint
        assert FaultSchedule.parse(schedule.token) == schedule

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(specs=())
        with pytest.raises(ValueError):
            FaultSchedule.parse("  ;  ")

    def test_coerce_schedule_accepts_all_spellings(self):
        spec = FaultSpec("stuck_at_1", "IO_ENABLE", 40)
        schedule = FaultSchedule.of(spec)
        assert coerce_schedule(None) is None
        assert coerce_schedule(schedule) is schedule
        assert coerce_schedule(spec) == schedule
        assert coerce_schedule([spec]) == schedule
        assert coerce_schedule(schedule.token) == schedule
        with pytest.raises(TypeError):
            coerce_schedule(42)


class TestFaultController:
    def _bundle(self, runner):
        return sis_targets(runner.system.peripheral.sis)

    def test_unknown_target_rejected_at_bind_time(self):
        runner = build_runner("splice_plb")
        targets = self._bundle(runner)
        targets.pop("IO_DONE")
        with pytest.raises(ValueError, match="IO_DONE"):
            FaultController("delayed_handshake:IO_DONE:10", targets)

    def test_rebase_arms_the_next_pending_cycle(self):
        runner = build_runner("splice_plb")
        simulator = runner.system.simulator
        controller = FaultController(
            "bit_flip:DATA_IN:5:1:0;stuck_at_1:IO_ENABLE:9", self._bundle(runner)
        )
        controller.rebase(simulator, simulator.cycle)
        assert simulator._next_fault == simulator.cycle + 5
        # Rebasing mid-schedule skips already-passed cycles.
        controller.rebase(simulator, simulator.cycle - 7)
        assert simulator._next_fault == simulator.cycle + 2

    def test_injected_counts_applied_ops(self):
        runner = build_runner("splice_plb")
        runner.apply_faults("stuck_at_1:IO_ENABLE:40:3")
        runner.run_scenario(SCENARIOS[0].generate_inputs(seed=0))
        assert runner.fault_controller.injected == 3

    def test_clearing_faults_detaches_the_controller(self):
        runner = build_runner("splice_plb")
        runner.apply_faults("stuck_at_1:IO_ENABLE:40:3")
        runner.apply_faults(None)
        assert runner.fault_controller is None
        clean = build_runner("splice_plb")
        faulted_then_cleared = runner.run_scenario(SCENARIOS[0].generate_inputs(seed=0))
        assert faulted_then_cleared == clean.run_scenario(
            SCENARIOS[0].generate_inputs(seed=0)
        )
        assert not runner.system.monitor.violations


#: Per-bus fault schedules that perturb a run without deadlocking it —
#: chosen so the differential harness exercises >= 3 fault classes per bus,
#: including cases where the monitor fires (see TestFaultMatrix for the
#: crash/deadlock cases, which the matrix records instead of raising).
_DIFFERENTIAL_CASES = [
    ("plb", "stuck_at_1:IO_ENABLE:40:3"),
    ("plb", "bit_flip:DATA_IN:30:1:7"),
    ("plb", "transient_pulse:DATA_OUT_VALID:25"),
    ("plb", "dup_beat:IO_ENABLE:40:2"),
    ("fcb", "transient_pulse:DATA_OUT_VALID:25"),
    ("fcb", "delayed_handshake:IO_DONE:60:2"),
    ("fcb", "bit_flip:DATA_IN:30:1:7"),
]

_KERNELS = (
    ("reference", ReferenceSimulator),
    ("event", Simulator),
    ("compiled", CompiledSimulator),
)


class TestInjectionIsCycleExact:
    """All three kernels under injection: same traces, outcomes, violations."""

    @pytest.mark.parametrize("bus,token", _DIFFERENTIAL_CASES)
    def test_three_way_differential_under_injection(self, bus, token):
        sets = SCENARIOS[0].generate_inputs(seed=0)
        traces, outcomes, violations, injected = {}, {}, {}, {}
        for label, factory in _KERNELS:
            device = build_splice_interpolator(f"splice_{bus}", simulator_factory=factory)
            simulator = device.system.simulator
            recorder = TraceRecorder(simulator, simulator.signals)
            device.apply_faults(token)
            outcomes[label] = device.run_scenario(sets)
            traces[label] = recorder.trace
            violations[label] = [
                (v.cycle, v.rule, v.detail) for v in device.system.monitor.violations
            ]
            injected[label] = device.fault_controller.injected
        assert injected["reference"] > 0, "the schedule never fired"
        for label, _ in _KERNELS[1:]:
            assert outcomes["reference"] == outcomes[label], label
            assert violations["reference"] == violations[label], label
            assert injected["reference"] == injected[label], label
            assert len(traces["reference"]) == len(traces[label]), label
            for cycle, (ref, got) in enumerate(
                zip(traces["reference"].samples, traces[label].samples)
            ):
                assert ref == got, (
                    f"{label} diverges from reference at cycle {cycle} "
                    f"under {token}: "
                    + ", ".join(
                        f"{n}: ref={ref.get(n)} {label}={got.get(n)}"
                        for n in sorted(set(ref) | set(got))
                        if ref.get(n) != got.get(n)
                    )
                )

    def test_schedule_rebases_per_scenario(self):
        """The same relative schedule faults every scenario identically, no
        matter how many runs the warm system served before."""
        fresh = build_runner("splice_plb", kernel="compiled")
        fresh.apply_faults("stuck_at_1:IO_ENABLE:40:3")
        warm = build_runner("splice_plb", kernel="compiled")
        warm.run_scenario(SCENARIOS[1].generate_inputs(seed=3))  # clean first
        warm.apply_faults("stuck_at_1:IO_ENABLE:40:3")
        sets = SCENARIOS[0].generate_inputs(seed=0)
        assert fresh.run_scenario(sets) == warm.run_scenario(sets)
        assert fresh.fault_controller.injected == warm.fault_controller.injected == 3


class TestCompiledDigestSeparation:
    """The program cache must never serve a faulted program as clean."""

    @pytest.fixture(autouse=True)
    def _program_cache(self, tmp_path, monkeypatch):
        # Digests are only computed when a program cache is attached — which
        # is exactly the configuration where a collision would be dangerous.
        from repro.rtl.compile import PROGRAM_CACHE_ENV

        monkeypatch.setenv(PROGRAM_CACHE_ENV, str(tmp_path / "programs"))

    def _digest(self, runner):
        simulator = runner.system.simulator
        simulator.compile()
        return simulator.design.digest, simulator.design.source

    def test_fault_schedule_is_part_of_the_program_digest(self):
        clean_digest, clean_source = self._digest(build_runner("splice_plb", kernel="compiled"))
        assert clean_digest
        faulted = build_runner("splice_plb", kernel="compiled")
        faulted.apply_faults("stuck_at_1:IO_ENABLE:40:3")
        faulted_digest, faulted_source = self._digest(faulted)
        assert faulted_digest != clean_digest
        assert "fault" in faulted_source
        # Distinct schedules get distinct digests.
        other = build_runner("splice_plb", kernel="compiled")
        other.apply_faults("bit_flip:DATA_IN:30:1:7")
        assert self._digest(other)[0] not in (clean_digest, faulted_digest)

    def test_clean_design_is_byte_identical_with_faults_cleared(self):
        """Attaching then clearing a schedule leaves no residue: the program
        source and digest revert to exactly the clean build's."""
        clean_digest, clean_source = self._digest(build_runner("splice_plb", kernel="compiled"))
        runner = build_runner("splice_plb", kernel="compiled")
        runner.apply_faults("stuck_at_1:IO_ENABLE:40:3")
        runner.apply_faults(None)
        digest, source = self._digest(runner)
        assert digest == clean_digest
        assert source == clean_source
        assert "_fire_faults" not in source


class TestFaultMatrix:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fault_matrix(
            buses=("splice_plb",),
            kinds=("stuck_at_0", "stuck_at_1", "transient_pulse", "dup_beat"),
        )

    def test_detected_rows_carry_rules_and_latency(self, rows):
        assert [row.kind for row in rows] == [
            "stuck_at_0", "stuck_at_1", "transient_pulse", "dup_beat",
        ]
        for row in rows:
            assert row.status == "detected", f"{row.kind} escaped on splice_plb"
            assert row.rules and row.violations >= 1
            assert row.cycles_to_detection is not None and row.cycles_to_detection >= 0
            # Every schedule token replays bit-exactly.
            assert FaultSchedule.parse(row.schedule).token == row.schedule

    def test_matrix_is_deterministic(self, rows):
        again = run_fault_matrix(
            buses=("splice_plb",),
            kinds=("stuck_at_0", "stuck_at_1", "transient_pulse", "dup_beat"),
        )
        assert [r.payload() for r in again] == [r.payload() for r in rows]

    def test_payload_and_markdown_artifacts(self, rows):
        payload = matrix_to_payload(rows, seed=0, scenario=SCENARIOS[0], kernel="compiled")
        assert payload["summary"]["detected"] == len(rows)
        assert payload["summary"]["escape"] == 0
        assert payload["meta"]["buses"] == ["splice_plb"]
        json.dumps(payload)  # artifact must be JSON-clean
        markdown = matrix_to_markdown(rows)
        assert markdown.count("\n") == len(rows) + 1  # header + rule + rows
        assert "| detected |" in markdown

    def test_crashed_runs_are_findings_not_failures(self):
        """A deadlocking fault (held enable on FCB wedges the handshake)
        yields a structured ``crashed`` row, never an exception."""
        [row] = run_fault_matrix(buses=("splice_fcb",), kinds=("stuck_at_1",))
        assert row.crashed
        assert row.error and "SimulationError" in row.error
        # The monitor caught the stuck strobe before the deadlock: violations
        # logged pre-crash still count toward detection.
        assert row.status == "detected"
        assert "crash" in matrix_to_markdown([row])


_COMPLETING_FAULTS = (None, "transient_pulse:DATA_OUT_VALID:25", "stuck_at_1:IO_ENABLE:40:3")


class TestCampaignFaultAxis:
    def test_faults_axis_multiplies_cells_and_is_canonicalized(self):
        spec = CampaignSpec(
            implementations=("splice_plb",),
            scenarios=SCENARIOS[:2],
            faults=(None, "stuck_at_1:IO_ENABLE:40"),
        )
        # Shorthand tokens canonicalize to the five-field form on the axis.
        assert spec.faults == (None, "stuck_at_1:IO_ENABLE:40:1:*")
        assert spec.cell_count == 2 * 2
        cells = spec.cells()
        assert {cell.faults for cell in cells} == {None, "stuck_at_1:IO_ENABLE:40:1:*"}

    def test_malformed_axis_token_rejected_at_spec_time(self):
        with pytest.raises(ValueError):
            CampaignSpec(
                implementations=("splice_plb",),
                scenarios=SCENARIOS[:1],
                faults=("definitely:not:a:fault:token",),
            )

    def test_clean_identity_is_unchanged_by_the_axis(self):
        """Pre-fault-axis digests and payloads must not shift: a clean cell
        describes, keys, and digests identically to one from a spec that
        never mentions faults."""
        legacy = CampaignCell("splice_plb", SCENARIOS[0], seed=0, repeat=0)
        via_axis = CampaignSpec(
            implementations=("splice_plb",), scenarios=SCENARIOS[:1]
        ).cells()[0]
        assert via_axis.faults is None
        assert via_axis.key == legacy.key
        assert "faults" not in via_axis.describe()
        assert cell_digest(via_axis) == cell_digest(legacy)

    def test_faulted_cells_digest_separately(self):
        clean = CampaignCell("splice_plb", SCENARIOS[0], seed=0, repeat=0)
        faulted = CampaignCell(
            "splice_plb", SCENARIOS[0], seed=0, repeat=0,
            faults="stuck_at_1:IO_ENABLE:40:1:*",
        )
        assert clean.key != faulted.key
        assert faulted.describe()["faults"] == "stuck_at_1:IO_ENABLE:40:1:*"
        assert cell_digest(clean) != cell_digest(faulted)

    def test_spec_round_trips_with_faults(self):
        spec = CampaignSpec(
            implementations=("splice_plb",),
            scenarios=SCENARIOS[:1],
            faults=_COMPLETING_FAULTS,
        )
        clone = CampaignSpec.from_dict(spec.describe())
        assert clone == spec
        # A fault-free spec's description stays byte-compatible with old specs.
        clean = CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS[:1])
        assert "faults" not in clean.describe()
        assert CampaignSpec.from_dict(clean.describe()) == clean

    def test_serial_and_sharded_agree_under_injection(self, tmp_path):
        spec = CampaignSpec(
            implementations=("splice_plb",),
            scenarios=SCENARIOS[:2],
            faults=_COMPLETING_FAULTS,
            kernel="compiled",
            name="fault-axis",
        )
        serial = run_campaign(spec, executor=SerialExecutor())
        sharded = run_campaign(spec, executor=ShardedExecutor(workers=2))
        assert serial.payload() == sharded.payload()
        assert all(cell.error is None for cell in serial.cells)
        # Faulted rows carry their schedule token through the artifacts;
        # clean rows omit the key (byte-compatible with pre-fault payloads).
        payload = serial.payload()
        assert sum(1 for row in payload if row.get("faults")) == 2 * 2
        assert "faults" in serial.to_csv().splitlines()[0]

    def test_faulted_outcomes_cache_separately_from_clean(self, tmp_path):
        spec = CampaignSpec(
            implementations=("splice_plb",),
            scenarios=SCENARIOS[:1],
            faults=(None, "transient_pulse:DATA_OUT_VALID:25:1:*"),
            kernel="compiled",
            name="fault-cache",
        )
        cold = run_campaign(spec, cache=tmp_path / "cache")
        warm = run_campaign(spec, cache=tmp_path / "cache")
        assert cold.meta["cells_cached"] == 0
        assert warm.meta["cells_cached"] == spec.cell_count == 2
        assert warm.payload() == cold.payload()

    def test_deadlocking_fault_yields_cell_exception_not_a_crash(self, tmp_path):
        """A schedule that wedges the handshake becomes a structured
        ``cell_exception`` record; the clean cells of the same grid survive,
        and the error is never cached (a warm rerun re-attempts it)."""
        spec = CampaignSpec(
            implementations=("splice_fcb",),
            scenarios=SCENARIOS[:1],
            faults=(None, "stuck_at_1:IO_ENABLE:40:3:*"),
            kernel="compiled",
            name="fault-deadlock",
        )
        result = run_campaign(spec, cache=tmp_path / "cache")
        by_faults = {cell.cell.faults: cell for cell in result.cells}
        assert by_faults[None].error is None
        errored = by_faults["stuck_at_1:IO_ENABLE:40:3:*"]
        assert errored.error is not None
        assert "cell_exception" in errored.error
        assert "stuck_at_1:IO_ENABLE:40:3:*" in errored.error
        assert result.meta["cells_failed"] == 1
        warm = run_campaign(spec, cache=tmp_path / "cache")
        assert warm.meta["cells_cached"] == 1  # the clean cell only
        assert warm.meta["cells_failed"] == 1

    def test_runner_without_fault_support_yields_structured_error(self):
        """The hand-written baseline adapters don't expose ``apply_faults``;
        asking them to inject must produce ``faults_unsupported`` records,
        not silently-clean results."""
        spec = CampaignSpec(
            implementations=("simple_plb", "splice_plb"),
            scenarios=SCENARIOS[:1],
            faults=("stuck_at_1:IO_ENABLE:40:3:*",),
            name="fault-unsupported",
        )
        result = run_campaign(spec)
        by_label = {cell.cell.label: cell for cell in result.cells}
        assert by_label["splice_plb"].error is None
        assert "faults_unsupported" in by_label["simple_plb"].error

    def test_executor_reapplies_schedules_on_a_shared_runner(self):
        """Serial execution reuses one warm runner per label: interleaved
        clean and faulted cells must each see their own schedule state."""
        from repro.campaign.executor import execute_cells

        spec = CampaignSpec(
            implementations=("splice_plb",),
            scenarios=SCENARIOS[:1],
            faults=(None, "stuck_at_1:IO_ENABLE:40:3:*"),
        )
        cells = spec.cells()
        outcomes = execute_cells(cells)
        clean_alone = execute_cells(
            CampaignSpec(implementations=("splice_plb",), scenarios=SCENARIOS[:1]).cells()
        )
        clean_key = next(cell.key for cell in cells if cell.faults is None)
        assert outcomes[clean_key] == next(iter(clean_alone.values()))


class TestFaultsCLI:
    def test_faults_run_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "faults", "run",
            "--buses", "splice_plb",
            "--classes", "stuck_at_0", "stuck_at_1",
            "--artifacts", str(tmp_path / "out"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| bus | fault class |" in out
        assert "detected" in out
        assert "findings, not failures" in out
        data = json.loads((tmp_path / "out" / "faults.json").read_text())
        assert data["summary"]["detected"] == 2
        assert (tmp_path / "out" / "faults.md").read_text().startswith("| bus |")

    def test_faults_run_rejects_unknown_class_and_scenario(self, capsys):
        from repro.cli import main

        assert main(["faults", "run", "--classes", "gamma_ray"]) == 2
        assert "unknown fault class" in capsys.readouterr().err
        assert main(["faults", "run", "--scenario", "99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_campaign_run_accepts_a_faults_axis(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "campaign", "run",
            "--implementations", "splice_plb",
            "--sweep", "degenerate", "--sweep-count", "2",
            "--faults", "none", "transient_pulse:DATA_OUT_VALID:25",
            "--artifacts", str(tmp_path / "artifacts"),
        ])
        assert rc == 0
        capsys.readouterr()
        data = json.loads((tmp_path / "artifacts" / "campaign.json").read_text())
        assert data["spec"]["faults"] == [None, "transient_pulse:DATA_OUT_VALID:25:1:*"]
        faulted = [row for row in data["cells"] if row.get("faults")]
        assert len(faulted) == 2
        assert all(row.get("error") is None for row in data["cells"])
