"""Cycle-leaping scheduler: O(activity) execution, proven cycle-exact.

The compiled kernel's fourth execution mode jumps the cycle counter over
spans where nothing can happen — every machine parked or elided, no pending
commits or events, monitors provably quiet — instead of iterating them.
These tests prove:

* idle-heavy workloads (timer countdowns, CALC_DONE poll loops, degenerate
  zero-transaction sweeps) stay bit-identical to the event and reference
  kernels — full signal traces, transaction outcomes, violation lists, and
  final cycle counts — while most cycles are leaped;
* the timed-wake heap underneath the leap decision is sound: per-process
  deduplication keeps re-arming countdowns from growing the heap, stale
  (tombstoned) entries never deliver wakes, ``wake_after(proc, 0)`` means
  "wake next cycle", and ``reset()`` clears the whole timed state.
"""

import pytest

from test_kernel_equivalence import BASES, _run_differential

from repro.devices.timer import build_timer_system
from repro.rtl import CompiledSimulator, Simulator, TraceRecorder
from repro.rtl.compile import _NEVER
from repro.soc.system import build_system


def _assert_leap_accounting(stats):
    """Leap engaged, and every cycle is either executed or leaped."""
    compiled = stats["compiled"]
    assert compiled.leaped_cycles > 0
    assert compiled.leaped_cycles + compiled.executed_cycles == compiled.cycles
    # Scan kernels execute every cycle; the counter must stay zero there.
    assert stats["event"].leaped_cycles == 0
    assert stats["reference"].leaped_cycles == 0
    assert stats["event"].executed_cycles == stats["event"].cycles


class TestIdleHeavyDifferential:
    """Leap-mode runs are bit-identical to the non-leaping kernels."""

    def test_timer_countdown_with_sparse_interrupts(self):
        """Long idle countdown spans, interrupted by occasional status reads."""

        def build(factory):
            timer = build_timer_system(simulator_factory=factory)
            timer.simulator = timer.system.simulator
            return timer

        def stimulus(timer):
            drivers = timer.drivers
            drivers["set_threshold"](300)
            drivers["enable"]()
            observed = []
            for _ in range(3):
                timer.system.run(1_000)  # idle span: nothing but the countdown
                observed.append(drivers["get_status"]())
                observed.append(drivers["get_snapshot"]())
            drivers["disable"]()
            return (tuple(observed), timer.cycles)

        outcome, stats = _run_differential(build, stimulus)
        _assert_leap_accounting(stats)
        # The idle spans dominate: the vast majority of cycles are leaped.
        compiled = stats["compiled"]
        assert compiled.leaped_cycles > compiled.cycles // 2
        # The timer really fired during the leaped spans (3000+ cycles at
        # threshold 300) and the counts survived the jumps.
        assert outcome[0][0] & 0b10  # fired bit on the first status read

    def test_calc_done_poll_loop_with_large_calc_latency(self):
        """The CALC_DONE handshake spans a long calc latency.

        On the PLB the master and adapter park while the user-logic stub
        counts its calc latency down, so nearly the whole 400-cycle window
        per call is leaped.  (The APB would not leap here: its master never
        waits on the peripheral, so the poll loop keeps it active.)
        """
        source = BASES["plb"] + "int f(int x);\n"

        def build(factory):
            return build_system(
                source,
                behaviors={"f": lambda x: x * 3 + 1},
                calc_latencies={"f": 400},
                simulator_factory=factory,
            )

        def stimulus(system):
            values = tuple(system.drivers["f"](x) for x in (5, 11))
            return (values, system.cycles)

        outcome, stats = _run_differential(build, stimulus)
        _assert_leap_accounting(stats)
        assert outcome[0] == (16, 34)

    def test_degenerate_zero_transaction_sweep(self):
        """A built system left entirely idle leaps essentially everything."""
        source = BASES["plb"] + "int read_reg(char idx);\n"

        def build(factory):
            return build_system(
                source,
                behaviors={"read_reg": lambda idx: 0},
                simulator_factory=factory,
            )

        def stimulus(system):
            system.run(2_000)
            return system.cycles

        _, stats = _run_differential(build, stimulus)
        _assert_leap_accounting(stats)
        compiled = stats["compiled"]
        assert compiled.leaped_cycles >= compiled.cycles - 5

    def test_no_leap_kernel_is_identical_but_never_leaps(self):
        """leap=False runs the same design cycle by cycle, bit-identically."""

        def run(leap):
            timer = build_timer_system(
                simulator_factory=lambda: CompiledSimulator(leap=leap)
            )
            simulator = timer.system.simulator
            recorder = TraceRecorder(simulator, simulator.signals)
            drivers = timer.drivers
            drivers["set_threshold"](150)
            drivers["enable"]()
            timer.system.run(1_200)
            status = drivers["get_status"]()
            return recorder.trace.samples, status, timer.cycles, simulator

        leap_samples, leap_status, leap_cycles, leap_sim = run(True)
        plain_samples, plain_status, plain_cycles, plain_sim = run(False)
        assert leap_sim.design.leap and not plain_sim.design.leap
        assert leap_sim.stats.leaped_cycles > 0
        assert plain_sim.stats.leaped_cycles == 0
        assert (leap_status, leap_cycles) == (plain_status, plain_cycles)
        assert leap_samples == plain_samples


class TestTimedWakeHeap:
    """The heap the leap decision trusts: dedupe, tombstones, zero wakes."""

    def test_rearming_countdown_keeps_heap_bounded(self):
        """A machine that re-arms on every run must not grow the heap."""
        sim = CompiledSimulator()
        runs = []

        def proc():
            runs.append(sim.cycle)
            sim.wake_after(proc, 3)
            return False

        sim.add_clocked(proc, sensitive_to=[])
        sim.step(9_000)
        # Pre-fix, every re-arm pushed a fresh entry: ~3000 of them here.
        assert len(sim._timed) <= 2
        assert len(sim._timed_target) <= 1
        assert runs == list(range(0, 9_000, 3))

    def test_later_rearm_is_deduped_against_pending_earlier_wake(self):
        sim = CompiledSimulator()

        def proc():
            return False

        sim.add_clocked(proc, sensitive_to=[])
        sim.compile()
        sim.wake_after(proc, 5)
        before = len(sim._timed)
        sim.wake_after(proc, 50)  # covered by the pending earlier wake
        assert len(sim._timed) == before
        assert sim._timed_target[proc] == sim.cycle + 5

    def test_stale_tombstone_never_delivers_a_wake(self):
        """Re-arming earlier tombstones the old entry; it must not fire."""
        sim = CompiledSimulator()
        runs = []
        armed = []

        def proc():
            runs.append(sim.cycle)
            if not armed:
                armed.append(True)
                sim.wake_after(proc, 50)
                sim.wake_after(proc, 5)  # earlier: tombstones the 50 entry
            return False

        sim.add_clocked(proc, sensitive_to=[])
        sim.step(100)
        # Runs on the initial all-woken cycle and at the live (earlier) wake
        # target only — the tombstoned cycle-50 entry is discarded silently.
        assert runs == [0, 5]
        assert not sim._timed and not sim._timed_target

    def test_zero_cycle_wake_means_next_cycle(self):
        """wake_after(proc, 0) (and negative) wakes on the *next* cycle."""
        sim = CompiledSimulator()
        runs = []

        def proc():
            runs.append(sim.cycle)
            if sim.cycle == 0:
                sim.wake_after(proc, 0)
            elif sim.cycle == 1:
                sim.wake_after(proc, -7)
            return False

        sim.add_clocked(proc, sensitive_to=[])
        sim.step(10)
        # Woken exactly once per request, one cycle later — never missed,
        # never double-delivered within the requesting cycle.
        assert runs == [0, 1, 2]


class TestResetContract:
    """A parked machine across reset() behaves like a fresh run."""

    @pytest.mark.parametrize("factory", [Simulator, CompiledSimulator],
                             ids=["event", "compiled"])
    def test_parked_machine_across_reset(self, factory):
        def build():
            sim = factory()
            out = sim.signal("out", width=32)

            def proc():
                cycle = sim.cycle
                if cycle % 7 == 0:
                    out.next = out.value + 1
                    return True
                if sim.timed_wakes:
                    sim.wake_after(proc, 7 - cycle % 7)
                return False

            sim.add_clocked(proc, sensitive_to=[])
            recorder = TraceRecorder(sim, [out])
            return sim, recorder

        # Fresh 20-cycle run on each kernel: identical traces.
        event_sim, event_rec = build()
        event_sim.step(20)
        baseline = list(event_rec.trace.samples)

        sim, recorder = build()
        sim.step(10)  # parks mid-countdown: a wake for cycle 14 is pending
        if sim.timed_wakes:
            assert sim._timed  # actually parked
        sim.reset()
        if sim.timed_wakes:
            # Reset clears the whole timed state: heap, per-process targets,
            # cached minimum, and the tie-break sequence counter.
            assert not sim._timed and not sim._timed_target
            assert sim._next_timed == _NEVER
            assert sim._timed_seq == 0
        assert sim.cycle == 0 and sim.stats.cycles == 0
        del recorder.trace.samples[:]
        sim.step(20)
        # The pre-reset wake must not fire at a bogus cycle: the post-reset
        # run is indistinguishable from a fresh one.
        assert recorder.trace.samples == baseline


class TestLeapEligibility:
    """Designs the kernel cannot prove quiet never leap."""

    def test_always_run_clocked_process_disables_leap(self):
        sim = CompiledSimulator()
        counter = sim.signal("count", width=8)
        sim.add_clocked(lambda: setattr(counter, "next", counter.value + 1))
        sim.step(50)
        assert not sim.design.leap
        assert sim.stats.leaped_cycles == 0

    def test_unannotated_monitor_disables_leap(self):
        sim = CompiledSimulator()
        sim.signal("idle", width=1)
        seen = []
        sim.add_monitor(lambda: seen.append(sim.cycle))
        sim.step(50)
        assert not sim.design.leap
        assert len(seen) == 50  # ran on every cycle, none skipped

    def test_trace_recorder_allows_leap_and_stays_exact(self):
        sim = CompiledSimulator()
        idle = sim.signal("idle", width=4, reset=9)
        recorder = TraceRecorder(sim, [idle])
        sim.step(50)
        assert sim.design.leap
        assert sim.stats.leaped_cycles > 0
        assert recorder.trace.values("idle") == [9] * 50
