"""Setuptools shim so `pip install -e .` works without the wheel package.

All project metadata lives in pyproject.toml; this file only exists because
the offline environment ships a setuptools old enough to need a setup.py for
legacy editable installs.
"""

from setuptools import setup

setup()
