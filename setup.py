"""Setuptools metadata for the Splice reproduction.

The offline environment ships a setuptools old enough to need a setup.py
for legacy editable installs, so the metadata lives here rather than in a
pyproject.toml.  Runtime needs only numpy; the ``test`` extra adds the
tier-1 toolchain, including Hypothesis for the property-based fuzz layer
(``repro.fuzz`` imports it lazily — corpus *replay* works without it, but
``splice fuzz run`` and the strategy/session modules require it).
"""

from setuptools import find_packages, setup

setup(
    name="splice-repro",
    version="0.9.0",
    description=(
        "Reproduction of Splice: a bus-independent peripheral interface "
        "generator with three equivalent RTL simulation kernels"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
        ],
    },
    entry_points={
        "console_scripts": [
            "splice=repro.cli:main",
        ],
    },
)
